// Package dataset generates the synthetic workloads that stand in for the
// paper's proprietary traces (§VI.A), calibrated against every statistic
// the paper publishes:
//
//   - MSN query trace → filter generator: 2.843 terms/query on average with
//     the published length CDF (31.33% / 67.75% / 85.31% for ≤1/2/3 terms),
//     757,996 distinct terms, Zipf popularity with top-1000 mass ≈ 0.437
//     (Figure 4).
//   - TREC WT10G → document generator: 64.8 terms/doc, skewed term
//     frequency with entropy ≈ 6.7593 (Figure 5), and 31.3% of the top-1000
//     query terms among the top-1000 document terms.
//   - TREC AP → document generator: 6054.9 terms/doc, entropy ≈ 9.4473,
//     overlap 26.9%.
//
// Calibration knobs (Zipf exponents) are solved numerically from the
// published targets rather than hard-coded, so scaled-down traces keep the
// same shape.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"github.com/movesys/move/internal/stats"
)

// Published statistics of the paper's datasets, used as calibration
// targets and surfaced by cmd/datagen.
const (
	// MSNDistinctTerms is the number of distinct query terms in the MSN
	// trace.
	MSNDistinctTerms = 757996
	// MSNMeanTermsPerFilter is the average query length.
	MSNMeanTermsPerFilter = 2.843
	// MSNTop1000Mass is the accumulated popularity of the top-1000 terms.
	MSNTop1000Mass = 0.437
	// WTMeanTermsPerDoc is the TREC WT10G average document length.
	WTMeanTermsPerDoc = 64.8
	// WTEntropy is the Shannon entropy of the WT frequency rates.
	WTEntropy = 6.7593
	// WTOverlapTop1000 is the fraction of top-1000 query terms among the
	// top-1000 WT document terms.
	WTOverlapTop1000 = 0.313
	// APMeanTermsPerDoc is the TREC AP average document length.
	APMeanTermsPerDoc = 6054.9
	// APEntropy is the Shannon entropy of the AP frequency rates.
	APEntropy = 9.4473
	// APOverlapTop1000 is the AP counterpart of WTOverlapTop1000.
	APOverlapTop1000 = 0.269
	// MSNLenCDF1, MSNLenCDF2, MSNLenCDF3 are the cumulative probabilities
	// of queries with at most 1, 2, and 3 terms.
	MSNLenCDF1 = 0.3133
	MSNLenCDF2 = 0.6775
	MSNLenCDF3 = 0.8531
)

// Term returns the canonical vocabulary term for a vocabulary ID.
func Term(id int) string { return "term" + strconv.Itoa(id) }

// ErrBadDataset reports invalid generator parameters.
var ErrBadDataset = errors.New("dataset: invalid parameters")

// --- Filter generator (MSN-like) ---

// FilterConfig parameterizes the MSN-like filter/query generator.
type FilterConfig struct {
	// DistinctTerms is the vocabulary size; 0 means the full MSN count
	// (scaled traces pass something smaller to keep memory flat).
	DistinctTerms int
	// Top1000Mass calibrates the Zipf exponent; 0 means the MSN value.
	// The mass is interpreted over the top max(1000·V/MSN, 10) ranks when
	// the vocabulary is scaled down, preserving skew shape.
	Top1000Mass float64
	// Seed drives generation.
	Seed int64
}

// FilterGen produces filter term sets.
type FilterGen struct {
	rng  *rand.Rand
	zipf *stats.Zipf
	// geometric tail parameter for query lengths ≥ 4.
	gTail float64
}

// NewFilterGen calibrates and builds an MSN-like generator.
func NewFilterGen(cfg FilterConfig) (*FilterGen, error) {
	v := cfg.DistinctTerms
	if v == 0 {
		v = MSNDistinctTerms
	}
	if v < 10 {
		return nil, fmt.Errorf("%w: vocabulary %d too small", ErrBadDataset, v)
	}
	mass := cfg.Top1000Mass
	if mass == 0 {
		mass = MSNTop1000Mass
	}
	if mass <= 0 || mass >= 1 {
		return nil, fmt.Errorf("%w: top-1000 mass %v", ErrBadDataset, mass)
	}
	// Scale the "top-1000" anchor with the vocabulary so scaled traces keep
	// the same head-heaviness.
	anchor := int(float64(v) * 1000 / MSNDistinctTerms)
	if anchor < 10 {
		anchor = 10
	}
	if anchor >= v {
		anchor = v / 2
	}
	z, err := calibrateZipfMass(v, anchor, mass)
	if err != nil {
		return nil, err
	}
	// Geometric tail solving the published mean: see §VI.A numbers in the
	// package comment. P(1..3) fixes 1.5685 of the mean; the ≥4 tail must
	// average 8.676, giving g/(1-g) = 4.676.
	const tailMean = (MSNMeanTermsPerFilter - (MSNLenCDF1 + 2*(MSNLenCDF2-MSNLenCDF1) + 3*(MSNLenCDF3-MSNLenCDF2))) / (1 - MSNLenCDF3)
	g := (tailMean - 4) / (tailMean - 3)
	return &FilterGen{
		rng:   rand.New(rand.NewSource(seedOr(cfg.Seed, 1))),
		zipf:  z,
		gTail: g,
	}, nil
}

// Next returns the next filter's term set (distinct terms, unsorted).
func (g *FilterGen) Next() []string {
	n := g.sampleLen()
	return sampleDistinct(g.rng, g.zipf, n, identityVocab)
}

// sampleLen draws a query length from the published CDF with a geometric
// tail for lengths ≥ 4.
func (g *FilterGen) sampleLen() int {
	u := g.rng.Float64()
	switch {
	case u < MSNLenCDF1:
		return 1
	case u < MSNLenCDF2:
		return 2
	case u < MSNLenCDF3:
		return 3
	}
	n := 4
	for n < 20 && g.rng.Float64() < g.gTail {
		n++
	}
	return n
}

// Vocab returns the vocabulary size.
func (g *FilterGen) Vocab() int { return g.zipf.N() }

// ZipfS returns the calibrated popularity exponent.
func (g *FilterGen) ZipfS() float64 { return g.zipf.S() }

// --- Document generator (TREC-like) ---

// CorpusKind selects a calibrated preset.
type CorpusKind int

// Presets.
const (
	// CorpusWT mimics TREC WT10G (short docs, skewed term frequency).
	CorpusWT CorpusKind = iota + 1
	// CorpusAP mimics TREC AP (very long docs, flatter frequency).
	CorpusAP
)

// String names the corpus.
func (k CorpusKind) String() string {
	switch k {
	case CorpusWT:
		return "TREC-WT"
	case CorpusAP:
		return "TREC-AP"
	default:
		return fmt.Sprintf("corpus(%d)", int(k))
	}
}

// CorpusConfig parameterizes a document generator.
type CorpusConfig struct {
	// Kind selects the calibrated preset.
	Kind CorpusKind
	// DistinctTerms is the document vocabulary size; 0 means 100,000.
	DistinctTerms int
	// MeanTerms overrides the preset mean document length (scaled traces
	// shrink the AP length to keep experiments fast); 0 keeps the preset.
	MeanTerms float64
	// Seed drives generation.
	Seed int64
}

// DocGen produces document term sets.
type DocGen struct {
	rng       *rand.Rand
	zipf      *stats.Zipf
	meanTerms float64
	vocabMap  []int // doc frequency rank -> vocabulary ID (overlap control)
	kind      CorpusKind
}

// NewDocGen calibrates and builds a TREC-like document generator.
func NewDocGen(cfg CorpusConfig) (*DocGen, error) {
	v := cfg.DistinctTerms
	if v == 0 {
		v = 100_000
	}
	if v < 100 {
		return nil, fmt.Errorf("%w: vocabulary %d too small", ErrBadDataset, v)
	}
	var entropyTarget, mean, overlap float64
	switch cfg.Kind {
	case CorpusWT:
		entropyTarget, mean, overlap = WTEntropy, WTMeanTermsPerDoc, WTOverlapTop1000
	case CorpusAP:
		entropyTarget, mean, overlap = APEntropy, APMeanTermsPerDoc, APOverlapTop1000
	default:
		return nil, fmt.Errorf("%w: corpus kind %v", ErrBadDataset, cfg.Kind)
	}
	if cfg.MeanTerms != 0 {
		mean = cfg.MeanTerms
	}
	if mean < 1 || mean > float64(v)/2 {
		return nil, fmt.Errorf("%w: mean %v terms with vocabulary %d", ErrBadDataset, mean, v)
	}
	z, err := calibrateZipfEntropy(v, entropyTarget)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seedOr(cfg.Seed, 2)))
	return &DocGen{
		rng:       rng,
		zipf:      z,
		meanTerms: mean,
		vocabMap:  overlapVocabMap(rng, v, overlap),
		kind:      cfg.Kind,
	}, nil
}

// OverlapAnchor returns the "top-1000" window scaled to a vocabulary of v
// terms: the paper measures query/document term overlap over the top 1000
// of 757,996 distinct query terms, so scaled traces use the same fraction.
func OverlapAnchor(v int) int {
	anchor := int(float64(v) * 1000 / MSNDistinctTerms)
	if anchor < 10 {
		anchor = 10
	}
	if anchor > v/2 {
		anchor = v / 2
	}
	return anchor
}

// overlapVocabMap builds the doc-rank → vocabulary-ID mapping so that the
// expected fraction of the top-anchor document ranks pointing into the
// query-side top-anchor vocabulary equals `overlap` (§VI.A's 26.9% /
// 31.3%, measured over the top-1000 of the full MSN vocabulary). The
// anchor window scales with the vocabulary so that scaled traces keep the
// paper's coupling between document-frequent and filter-popular terms —
// exactly the terms for which "it is necessary ... to combine both
// replication and separation schemes".
func overlapVocabMap(rng *rand.Rand, v int, overlap float64) []int {
	anchor := OverlapAnchor(v)
	ids := rng.Perm(v) // candidate vocabulary IDs, 0-based
	// Partition candidates into head (query-popular: id < anchor) and tail.
	var head, tail []int
	for _, id := range ids {
		if id < anchor {
			head = append(head, id)
		} else {
			tail = append(tail, id)
		}
	}
	mapping := make([]int, v)
	hi, ti := 0, 0
	for rank := 0; rank < v; rank++ {
		useHead := false
		if rank < anchor {
			// Deterministic even spread: exactly ⌊anchor·overlap⌋ of the
			// top-anchor document ranks map to query-popular IDs, at
			// evenly spaced ranks. Determinism keeps the coupling (and
			// thus the IL hot-spot behaviour the paper measures) stable
			// across seeds; the rng still shuffles which IDs are used.
			useHead = int(float64(rank+1)*overlap) > int(float64(rank)*overlap)
		}
		// Fall back to whichever pool still has candidates.
		switch {
		case useHead && hi < len(head):
			mapping[rank] = head[hi]
			hi++
		case ti < len(tail):
			mapping[rank] = tail[ti]
			ti++
		default:
			mapping[rank] = head[hi]
			hi++
		}
	}
	return mapping
}

// Next returns the next document's term set (distinct terms, unsorted).
func (g *DocGen) Next() []string {
	// Document length: truncated normal around the mean (σ = mean/3),
	// bounded to [1, 3·mean] — long-article variance without pathological
	// outliers.
	l := int(math.Round(g.rng.NormFloat64()*g.meanTerms/3 + g.meanTerms))
	if l < 1 {
		l = 1
	}
	if maxL := int(3 * g.meanTerms); l > maxL {
		l = maxL
	}
	return sampleDistinct(g.rng, g.zipf, l, func(rank int) int {
		return g.vocabMap[rank-1]
	})
}

// Vocab returns the vocabulary size.
func (g *DocGen) Vocab() int { return g.zipf.N() }

// ZipfS returns the calibrated frequency exponent.
func (g *DocGen) ZipfS() float64 { return g.zipf.S() }

// Kind returns the preset.
func (g *DocGen) Kind() CorpusKind { return g.kind }

// --- shared sampling helpers ---

// identityVocab maps Zipf rank r to vocabulary ID r-1.
func identityVocab(rank int) int { return rank - 1 }

// sampleDistinct draws n distinct vocabulary terms by Zipf rank with
// rejection, falling back to sequential fill if the head is exhausted.
func sampleDistinct(rng *rand.Rand, z *stats.Zipf, n int, vocab func(rank int) int) []string {
	if n > z.N() {
		n = z.N()
	}
	seen := make(map[int]struct{}, n)
	out := make([]string, 0, n)
	misses := 0
	for len(out) < n {
		rank := z.Sample(rng)
		if _, dup := seen[rank]; dup {
			misses++
			if misses > 20*n+100 {
				// Head exhausted (tiny vocabulary or huge doc): fill with
				// the smallest unused ranks.
				for r := 1; r <= z.N() && len(out) < n; r++ {
					if _, dup := seen[r]; !dup {
						seen[r] = struct{}{}
						out = append(out, Term(vocab(r)))
					}
				}
				return out
			}
			continue
		}
		seen[rank] = struct{}{}
		out = append(out, Term(vocab(rank)))
	}
	return out
}

// calibrateZipfMass solves for the exponent s such that the top-`anchor`
// mass of a Zipf(v, s) distribution equals target.
func calibrateZipfMass(v, anchor int, target float64) (*stats.Zipf, error) {
	lo, hi := 0.0, 3.0
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		z, err := stats.NewZipf(v, mid)
		if err != nil {
			return nil, err
		}
		if z.CDF(anchor) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return stats.NewZipf(v, (lo+hi)/2)
}

// calibrateZipfEntropy solves for the exponent s such that the Shannon
// entropy of Zipf(v, s) equals target (entropy decreases monotonically in
// s). If the target exceeds the uniform entropy log2(v), the flattest
// (s≈0) distribution is returned.
func calibrateZipfEntropy(v int, target float64) (*stats.Zipf, error) {
	lo, hi := 0.0, 3.0
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		h, err := zipfEntropy(v, mid)
		if err != nil {
			return nil, err
		}
		if h > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return stats.NewZipf(v, (lo+hi)/2)
}

func zipfEntropy(v int, s float64) (float64, error) {
	z, err := stats.NewZipf(v, s)
	if err != nil {
		return 0, err
	}
	h := 0.0
	for r := 1; r <= v; r++ {
		p := z.PMF(r)
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h, nil
}

func seedOr(seed, fallback int64) int64 {
	if seed == 0 {
		return fallback
	}
	return seed
}
