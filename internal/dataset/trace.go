package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// WriteTrace writes term sets to w, one item per line, terms separated by
// single spaces — the on-disk trace format consumed by cmd/datagen and
// cmd/movebench.
func WriteTrace(w io.Writer, items [][]string) error {
	bw := bufio.NewWriter(w)
	for _, terms := range items {
		if _, err := bw.WriteString(strings.Join(terms, " ")); err != nil {
			return fmt.Errorf("dataset: write trace: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("dataset: write trace: %w", err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace written by WriteTrace. Empty lines are skipped.
func ReadTrace(r io.Reader) ([][]string, error) {
	var out [][]string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24) // AP-like docs have huge lines
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		out = append(out, strings.Fields(line))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read trace: %w", err)
	}
	return out, nil
}

// SaveTrace writes a trace file.
func SaveTrace(path string, items [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: create trace %s: %w", path, err)
	}
	if err := WriteTrace(f, items); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// LoadTrace reads a trace file.
func LoadTrace(path string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: open trace %s: %w", path, err)
	}
	defer func() {
		_ = f.Close()
	}()
	return ReadTrace(f)
}

// Generate materializes n items from a generator function.
func Generate(n int, next func() []string) [][]string {
	out := make([][]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, next())
	}
	return out
}
