package dataset

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/movesys/move/internal/stats"
)

func TestFilterGenValidation(t *testing.T) {
	if _, err := NewFilterGen(FilterConfig{DistinctTerms: 3}); !errors.Is(err, ErrBadDataset) {
		t.Fatalf("tiny vocab: %v", err)
	}
	if _, err := NewFilterGen(FilterConfig{Top1000Mass: 1.5}); !errors.Is(err, ErrBadDataset) {
		t.Fatalf("bad mass: %v", err)
	}
}

func TestFilterLengthDistributionMatchesMSN(t *testing.T) {
	g, err := NewFilterGen(FilterConfig{DistinctTerms: 50_000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50_000
	counts := make(map[int]int)
	total := 0
	for i := 0; i < n; i++ {
		l := len(g.Next())
		counts[l]++
		total += l
	}
	cdf := func(k int) float64 {
		c := 0
		for l, cnt := range counts {
			if l <= k {
				c += cnt
			}
		}
		return float64(c) / n
	}
	if got := cdf(1); math.Abs(got-MSNLenCDF1) > 0.01 {
		t.Errorf("P(len<=1) = %v, want %v", got, MSNLenCDF1)
	}
	if got := cdf(2); math.Abs(got-MSNLenCDF2) > 0.01 {
		t.Errorf("P(len<=2) = %v, want %v", got, MSNLenCDF2)
	}
	if got := cdf(3); math.Abs(got-MSNLenCDF3) > 0.01 {
		t.Errorf("P(len<=3) = %v, want %v", got, MSNLenCDF3)
	}
	mean := float64(total) / n
	if math.Abs(mean-MSNMeanTermsPerFilter) > 0.15 {
		t.Errorf("mean terms per filter = %v, want %v", mean, MSNMeanTermsPerFilter)
	}
}

func TestFilterPopularityCalibration(t *testing.T) {
	// Scaled vocabulary: the head-mass anchor scales along, preserving
	// Figure 4's skew.
	const vocab = 75_800 // 1/10 of MSN
	g, err := NewFilterGen(FilterConfig{DistinctTerms: vocab, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	counter := stats.NewTermCounter()
	for i := 0; i < 60_000; i++ {
		counter.Observe(g.Next())
	}
	// Expected anchor = vocab/MSN*1000 = 100 top terms carrying ≈0.437 of
	// term occurrences.
	ranked := counter.Ranked(0)
	var mass, all float64
	for i, r := range ranked {
		if i < 100 {
			mass += r.Rate
		}
		all += r.Rate
	}
	got := mass / all
	if math.Abs(got-MSNTop1000Mass) > 0.08 {
		t.Errorf("top-anchor mass = %v, want ≈%v", got, MSNTop1000Mass)
	}
}

func TestFilterTermsDistinct(t *testing.T) {
	g, err := NewFilterGen(FilterConfig{DistinctTerms: 1000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		terms := g.Next()
		seen := make(map[string]struct{}, len(terms))
		for _, term := range terms {
			if _, dup := seen[term]; dup {
				t.Fatalf("duplicate term %q in filter %v", term, terms)
			}
			seen[term] = struct{}{}
		}
	}
}

func TestDocGenValidation(t *testing.T) {
	if _, err := NewDocGen(CorpusConfig{Kind: CorpusKind(9)}); !errors.Is(err, ErrBadDataset) {
		t.Fatalf("bad kind: %v", err)
	}
	if _, err := NewDocGen(CorpusConfig{Kind: CorpusWT, DistinctTerms: 10}); !errors.Is(err, ErrBadDataset) {
		t.Fatalf("tiny vocab: %v", err)
	}
	if _, err := NewDocGen(CorpusConfig{Kind: CorpusWT, DistinctTerms: 1000, MeanTerms: 900}); !errors.Is(err, ErrBadDataset) {
		t.Fatalf("mean too large: %v", err)
	}
}

func TestDocLengthMeans(t *testing.T) {
	wt, err := NewDocGen(CorpusConfig{Kind: CorpusWT, DistinctTerms: 20_000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	const n = 3000
	for i := 0; i < n; i++ {
		total += len(wt.Next())
	}
	mean := float64(total) / n
	if math.Abs(mean-WTMeanTermsPerDoc) > 4 {
		t.Errorf("WT mean doc length = %v, want ≈%v", mean, WTMeanTermsPerDoc)
	}

	ap, err := NewDocGen(CorpusConfig{Kind: CorpusAP, DistinctTerms: 20_000, MeanTerms: 600, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	total = 0
	for i := 0; i < 500; i++ {
		total += len(ap.Next())
	}
	if mean := float64(total) / 500; math.Abs(mean-600) > 40 {
		t.Errorf("AP (scaled) mean doc length = %v, want ≈600", mean)
	}
}

func TestWTSkewerThanAP(t *testing.T) {
	// The paper: WT entropy 6.76 < AP entropy 9.45 ⇒ WT is skewer. The
	// calibrated generators must preserve the ordering.
	wt, err := NewDocGen(CorpusConfig{Kind: CorpusWT, DistinctTerms: 30_000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ap, err := NewDocGen(CorpusConfig{Kind: CorpusAP, DistinctTerms: 30_000, MeanTerms: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if wt.ZipfS() <= ap.ZipfS() {
		t.Fatalf("WT exponent %v should exceed AP exponent %v", wt.ZipfS(), ap.ZipfS())
	}
	wtC, apC := stats.NewTermCounter(), stats.NewTermCounter()
	for i := 0; i < 1500; i++ {
		wtC.Observe(wt.Next())
		apC.Observe(ap.Next())
	}
	if wtC.Entropy() >= apC.Entropy() {
		t.Fatalf("measured WT entropy %v should be below AP entropy %v", wtC.Entropy(), apC.Entropy())
	}
}

func TestCalibratedEntropyNearTarget(t *testing.T) {
	// The Zipf PMF entropy (the calibration objective) must hit the target
	// closely for the full-size vocabulary.
	for _, tc := range []struct {
		kind   CorpusKind
		target float64
	}{
		{CorpusWT, WTEntropy},
		{CorpusAP, APEntropy},
	} {
		g, err := NewDocGen(CorpusConfig{Kind: tc.kind, DistinctTerms: 100_000, MeanTerms: 50, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		h, err := zipfEntropyForTest(g)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(h-tc.target) > 0.05 {
			t.Errorf("%v: calibrated entropy %v, want %v", tc.kind, h, tc.target)
		}
	}
}

func zipfEntropyForTest(g *DocGen) (float64, error) {
	return zipfEntropy(g.Vocab(), g.ZipfS())
}

func TestOverlapCalibration(t *testing.T) {
	for _, tc := range []struct {
		kind CorpusKind
		want float64
	}{
		{CorpusWT, WTOverlapTop1000},
		{CorpusAP, APOverlapTop1000},
	} {
		g, err := NewDocGen(CorpusConfig{Kind: tc.kind, DistinctTerms: 50_000, MeanTerms: 60, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		// Top-anchor document terms = vocabMap[0:anchor]; query-popular
		// terms are vocabulary IDs < anchor (rank order). Measure the
		// overlap the generator was asked to produce.
		anchor := OverlapAnchor(g.Vocab())
		hits := 0
		for rank := 0; rank < anchor; rank++ {
			if g.vocabMap[rank] < anchor {
				hits++
			}
		}
		got := float64(hits) / float64(anchor)
		if math.Abs(got-tc.want) > 0.05 {
			t.Errorf("%v: overlap = %v, want %v", tc.kind, got, tc.want)
		}
	}
}

func TestDocTermsDistinctAndMappedOnce(t *testing.T) {
	g, err := NewDocGen(CorpusConfig{Kind: CorpusWT, DistinctTerms: 5000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// vocabMap must be a permutation (no two ranks share a vocabulary ID).
	seen := make(map[int]struct{}, len(g.vocabMap))
	for _, id := range g.vocabMap {
		if _, dup := seen[id]; dup {
			t.Fatal("vocabMap is not injective")
		}
		seen[id] = struct{}{}
	}
	for i := 0; i < 500; i++ {
		terms := g.Next()
		set := make(map[string]struct{}, len(terms))
		for _, term := range terms {
			if _, dup := set[term]; dup {
				t.Fatalf("duplicate term in doc: %q", term)
			}
			set[term] = struct{}{}
		}
	}
}

func TestTinyVocabularyDocFill(t *testing.T) {
	// A doc longer than the vocabulary must terminate and return all terms.
	g, err := NewDocGen(CorpusConfig{Kind: CorpusWT, DistinctTerms: 150, MeanTerms: 70, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		terms := g.Next()
		if len(terms) == 0 || len(terms) > 150 {
			t.Fatalf("doc of %d terms from vocab 150", len(terms))
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	items := [][]string{
		{"alpha", "beta"},
		{"gamma"},
		{"delta", "epsilon", "zeta"},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, items); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, items) {
		t.Fatalf("round trip: %v != %v", got, items)
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.txt")
	items := Generate(20, func() []string { return []string{"x", "y"} })
	if err := SaveTrace(path, items); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("loaded %d items, want 20", len(got))
	}
	if _, err := LoadTrace(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestReadTraceSkipsEmptyLines(t *testing.T) {
	got, err := ReadTrace(bytes.NewReader([]byte("a b\n\n\nc\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d items, want 2", len(got))
	}
}

func TestGeneratorsDeterministicBySeed(t *testing.T) {
	mk := func() [][]string {
		g, err := NewFilterGen(FilterConfig{DistinctTerms: 10_000, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return Generate(50, g.Next)
	}
	if !reflect.DeepEqual(mk(), mk()) {
		t.Fatal("same seed should reproduce the trace")
	}
}

func TestCorpusKindString(t *testing.T) {
	if CorpusWT.String() != "TREC-WT" || CorpusAP.String() != "TREC-AP" {
		t.Fatal("kind names wrong")
	}
	if CorpusKind(5).String() != "corpus(5)" {
		t.Fatal("unknown kind string wrong")
	}
}
