// Package model defines the data model of §III.A — documents and filters as
// term sets — together with their wire encodings. It is the shared leaf
// package of the system: stores index filters, the matcher compares term
// sets, the forwarding engine ships documents, and the public API re-exports
// these types.
package model

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"github.com/movesys/move/internal/codec"
)

// FilterID uniquely identifies a registered filter across the cluster.
type FilterID uint64

// String renders the ID for logs.
func (id FilterID) String() string { return "f" + strconv.FormatUint(uint64(id), 10) }

// MatchMode selects the matching semantics between a document and a filter.
type MatchMode int

// Matching semantics. The paper's default is boolean OR ("we say that d
// successfully matches f if there is a term t that appears inside both d
// and f", §III.A); AND and similarity-threshold semantics are the "more
// involved matching semantics" extension it mentions (following SIFT [25]
// and STAIRS [17]).
const (
	// MatchAny matches when at least one filter term occurs in the document.
	MatchAny MatchMode = iota + 1
	// MatchAll matches when every filter term occurs in the document.
	MatchAll
	// MatchThreshold matches when the VSM relevance score between document
	// and filter reaches the filter's threshold.
	MatchThreshold
)

// String returns the mode name.
func (m MatchMode) String() string {
	switch m {
	case MatchAny:
		return "any"
	case MatchAll:
		return "all"
	case MatchThreshold:
		return "threshold"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Filter is a registered user profile: a small set of query terms (§VI.A:
// 2–3 terms on average) plus dissemination metadata.
type Filter struct {
	ID         FilterID
	Subscriber string
	Terms      []string
	Mode       MatchMode
	// Threshold is the minimum VSM score for MatchThreshold filters.
	Threshold float64
}

// Validation errors.
var (
	// ErrNoTerms reports a filter or document with an empty term set.
	ErrNoTerms = errors.New("model: empty term set")
	// ErrBadMode reports an unknown match mode.
	ErrBadMode = errors.New("model: invalid match mode")
)

// Validate checks structural invariants.
func (f *Filter) Validate() error {
	if len(f.Terms) == 0 {
		return fmt.Errorf("filter %s: %w", f.ID, ErrNoTerms)
	}
	switch f.Mode {
	case MatchAny, MatchAll:
	case MatchThreshold:
		if f.Threshold <= 0 || f.Threshold > 1 {
			return fmt.Errorf("filter %s: threshold %v outside (0,1]: %w", f.ID, f.Threshold, ErrBadMode)
		}
	default:
		return fmt.Errorf("filter %s: %w: %v", f.ID, ErrBadMode, f.Mode)
	}
	return nil
}

// Clone returns a deep copy (term slice included), so stores can hand out
// filters without aliasing their internals.
func (f *Filter) Clone() Filter {
	out := *f
	out.Terms = append([]string(nil), f.Terms...)
	return out
}

// Encode serializes the filter.
func (f *Filter) Encode() []byte {
	w := codec.NewWriter(32 + 16*len(f.Terms))
	f.EncodeTo(w)
	return w.Bytes()
}

// EncodeTo appends the filter to an existing writer.
func (f *Filter) EncodeTo(w *codec.Writer) {
	w.Uvarint(uint64(f.ID))
	w.String(f.Subscriber)
	w.StringSlice(f.Terms)
	w.Uint8(uint8(f.Mode))
	w.Float64(f.Threshold)
}

// DecodeFilter parses a filter from r.
func DecodeFilter(r *codec.Reader) (Filter, error) {
	var f Filter
	id, err := r.Uvarint()
	if err != nil {
		return f, fmt.Errorf("model: filter id: %w", err)
	}
	f.ID = FilterID(id)
	if f.Subscriber, err = r.String(); err != nil {
		return f, fmt.Errorf("model: filter subscriber: %w", err)
	}
	if f.Terms, err = r.StringSlice(); err != nil {
		return f, fmt.Errorf("model: filter terms: %w", err)
	}
	mode, err := r.Uint8()
	if err != nil {
		return f, fmt.Errorf("model: filter mode: %w", err)
	}
	f.Mode = MatchMode(mode)
	if f.Threshold, err = r.Float64(); err != nil {
		return f, fmt.Errorf("model: filter threshold: %w", err)
	}
	return f, nil
}

// Document is a published content item represented by its deduplicated term
// set (§III.A).
type Document struct {
	ID    uint64
	Terms []string
}

// Validate checks structural invariants.
func (d *Document) Validate() error {
	if len(d.Terms) == 0 {
		return fmt.Errorf("document %d: %w", d.ID, ErrNoTerms)
	}
	return nil
}

// TermSet returns the terms as a membership set.
func (d *Document) TermSet() map[string]struct{} {
	set := make(map[string]struct{}, len(d.Terms))
	for _, t := range d.Terms {
		set[t] = struct{}{}
	}
	return set
}

// Encode serializes the document.
func (d *Document) Encode() []byte {
	w := codec.NewWriter(16 + 16*len(d.Terms))
	d.EncodeTo(w)
	return w.Bytes()
}

// EncodeTo appends the document to an existing writer.
func (d *Document) EncodeTo(w *codec.Writer) {
	w.Uvarint(d.ID)
	w.StringSlice(d.Terms)
}

// DecodeDocument parses a document from r.
func DecodeDocument(r *codec.Reader) (Document, error) {
	var d Document
	id, err := r.Uvarint()
	if err != nil {
		return d, fmt.Errorf("model: document id: %w", err)
	}
	d.ID = id
	if d.Terms, err = r.StringSlice(); err != nil {
		return d, fmt.Errorf("model: document terms: %w", err)
	}
	return d, nil
}

// SortTerms sorts and deduplicates a term slice in place, returning the
// (possibly shortened) slice. Term sets throughout the system are kept in
// this canonical form.
func SortTerms(terms []string) []string {
	sort.Strings(terms)
	out := terms[:0]
	var prev string
	for i, t := range terms {
		if i > 0 && t == prev {
			continue
		}
		out = append(out, t)
		prev = t
	}
	return out
}
