// Package model defines the data model of §III.A — documents and filters as
// term sets — together with their wire encodings. It is the shared leaf
// package of the system: stores index filters, the matcher compares term
// sets, the forwarding engine ships documents, and the public API re-exports
// these types.
package model

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"github.com/movesys/move/internal/codec"
)

// FilterID uniquely identifies a registered filter across the cluster.
type FilterID uint64

// String renders the ID for logs.
func (id FilterID) String() string { return "f" + strconv.FormatUint(uint64(id), 10) }

// MatchMode selects the matching semantics between a document and a filter.
type MatchMode int

// Matching semantics. The paper's default is boolean OR ("we say that d
// successfully matches f if there is a term t that appears inside both d
// and f", §III.A); AND and similarity-threshold semantics are the "more
// involved matching semantics" extension it mentions (following SIFT [25]
// and STAIRS [17]).
const (
	// MatchAny matches when at least one filter term occurs in the document.
	MatchAny MatchMode = iota + 1
	// MatchAll matches when every filter term occurs in the document.
	MatchAll
	// MatchThreshold matches when the VSM relevance score between document
	// and filter reaches the filter's threshold.
	MatchThreshold
)

// String returns the mode name.
func (m MatchMode) String() string {
	switch m {
	case MatchAny:
		return "any"
	case MatchAll:
		return "all"
	case MatchThreshold:
		return "threshold"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Filter is a registered user profile: a small set of query terms (§VI.A:
// 2–3 terms on average) plus dissemination metadata.
type Filter struct {
	ID         FilterID
	Subscriber string
	Terms      []string
	Mode       MatchMode
	// Threshold is the minimum VSM score for MatchThreshold filters.
	Threshold float64
}

// Validation errors.
var (
	// ErrNoTerms reports a filter or document with an empty term set.
	ErrNoTerms = errors.New("model: empty term set")
	// ErrBadMode reports an unknown match mode.
	ErrBadMode = errors.New("model: invalid match mode")
)

// Validate checks structural invariants.
func (f *Filter) Validate() error {
	if len(f.Terms) == 0 {
		return fmt.Errorf("filter %s: %w", f.ID, ErrNoTerms)
	}
	switch f.Mode {
	case MatchAny, MatchAll:
	case MatchThreshold:
		if f.Threshold <= 0 || f.Threshold > 1 {
			return fmt.Errorf("filter %s: threshold %v outside (0,1]: %w", f.ID, f.Threshold, ErrBadMode)
		}
	default:
		return fmt.Errorf("filter %s: %w: %v", f.ID, ErrBadMode, f.Mode)
	}
	return nil
}

// Clone returns a deep copy (term slice included), so stores can hand out
// filters without aliasing their internals.
func (f *Filter) Clone() Filter {
	out := *f
	out.Terms = append([]string(nil), f.Terms...)
	return out
}

// Encode serializes the filter.
func (f *Filter) Encode() []byte {
	w := codec.NewWriter(32 + 16*len(f.Terms))
	f.EncodeTo(w)
	return w.Bytes()
}

// EncodeTo appends the filter to an existing writer.
func (f *Filter) EncodeTo(w *codec.Writer) {
	w.Uvarint(uint64(f.ID))
	w.String(f.Subscriber)
	w.StringSlice(f.Terms)
	w.Uint8(uint8(f.Mode))
	w.Float64(f.Threshold)
}

// DecodeFilter parses a filter from r.
func DecodeFilter(r *codec.Reader) (Filter, error) {
	var f Filter
	id, err := r.Uvarint()
	if err != nil {
		return f, fmt.Errorf("model: filter id: %w", err)
	}
	f.ID = FilterID(id)
	if f.Subscriber, err = r.String(); err != nil {
		return f, fmt.Errorf("model: filter subscriber: %w", err)
	}
	if f.Terms, err = r.StringSlice(); err != nil {
		return f, fmt.Errorf("model: filter terms: %w", err)
	}
	mode, err := r.Uint8()
	if err != nil {
		return f, fmt.Errorf("model: filter mode: %w", err)
	}
	f.Mode = MatchMode(mode)
	if f.Threshold, err = r.Float64(); err != nil {
		return f, fmt.Errorf("model: filter threshold: %w", err)
	}
	return f, nil
}

// Document is a published content item represented by its deduplicated term
// set (§III.A).
//
// The struct is copied by value throughout the system; copies share the
// memoized term-set view (see View), so priming it once — as the decode
// paths do — serves every downstream match against the same document.
type Document struct {
	ID    uint64
	Terms []string

	// view memoizes the term-set view. A plain pointer rather than a
	// sync.Once/atomic: Document is copied by value everywhere, and any
	// synchronization primitive would trip `go vet`'s copylocks (and cost
	// an allocation per document). The rule instead is prime-before-share:
	// call View once while the document is still owned by one goroutine.
	view *DocView
}

// Validate checks structural invariants.
func (d *Document) Validate() error {
	if len(d.Terms) == 0 {
		return fmt.Errorf("document %d: %w", d.ID, ErrNoTerms)
	}
	return nil
}

// TermSet returns the terms as a freshly built membership set the caller
// may keep and mutate. Hot paths should use View instead, which memoizes.
func (d *Document) TermSet() map[string]struct{} {
	set := make(map[string]struct{}, len(d.Terms))
	for _, t := range d.Terms {
		set[t] = struct{}{}
	}
	return set
}

// docViewMapThreshold is the term count above which DocView backs Contains
// with a hash map instead of binary search. Binary search needs no build
// cost and ≤10 string compares even on the paper's widest WT/AP documents,
// so the map only pays for itself when one view serves very many membership
// probes — the RS baseline's SIFT scan over thousands of candidate filters.
// On the MOVE path a home node evaluates only one term's posting list per
// decoded document copy, so building a map per wire hop was the single
// largest allocation source on the publish path; the threshold is set high
// enough that routed documents stay map-free.
const docViewMapThreshold = 512

// DocView is an immutable memoized view of a document's term set: the
// canonical sorted term list plus, for wide documents, a membership map.
// Views are built once (see Document.View) and then shared read-only across
// every match evaluation of the document, so they must never be mutated.
type DocView struct {
	sorted []string
	set    map[string]struct{} // nil below docViewMapThreshold
}

// NewDocView builds a view over a term list. The slice is aliased when it
// is already in canonical (sorted, deduplicated) form and copied otherwise,
// so callers keep ownership of non-canonical input.
func NewDocView(terms []string) *DocView {
	if !termsCanonical(terms) {
		terms = SortTerms(append([]string(nil), terms...))
	}
	v := &DocView{sorted: terms}
	if len(terms) >= docViewMapThreshold {
		v.set = make(map[string]struct{}, len(terms))
		for _, t := range terms {
			v.set[t] = struct{}{}
		}
	}
	return v
}

// termsCanonical reports whether terms are strictly ascending — the
// canonical form SortTerms produces.
func termsCanonical(terms []string) bool {
	for i := 1; i < len(terms); i++ {
		if terms[i] <= terms[i-1] {
			return false
		}
	}
	return true
}

// Contains reports term membership without allocating.
func (v *DocView) Contains(t string) bool {
	if v.set != nil {
		_, ok := v.set[t]
		return ok
	}
	// Open-coded binary search: sort.SearchStrings would work, but writing
	// it out guarantees no closure reaches the heap on any toolchain.
	lo, hi := 0, len(v.sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v.sorted[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(v.sorted) && v.sorted[lo] == t
}

// Sorted returns the canonical sorted term list. Read-only: the slice is
// shared with every holder of the view (and possibly the document itself).
func (v *DocView) Sorted() []string { return v.sorted }

// Len returns the number of distinct terms.
func (v *DocView) Len() int { return len(v.sorted) }

// View returns the document's memoized term-set view, building it on first
// use. The first call is not synchronized — prime the view while the
// document is still owned by a single goroutine (the RPC decode paths do
// this), after which copies of the Document share it freely.
func (d *Document) View() *DocView {
	if d.view == nil {
		d.view = NewDocView(d.Terms)
	}
	return d.view
}

// Encode serializes the document.
func (d *Document) Encode() []byte {
	w := codec.NewWriter(16 + 16*len(d.Terms))
	d.EncodeTo(w)
	return w.Bytes()
}

// EncodeTo appends the document to an existing writer.
func (d *Document) EncodeTo(w *codec.Writer) {
	w.Uvarint(d.ID)
	w.StringSlice(d.Terms)
}

// DecodeDocument parses a document from r.
func DecodeDocument(r *codec.Reader) (Document, error) {
	var d Document
	id, err := r.Uvarint()
	if err != nil {
		return d, fmt.Errorf("model: document id: %w", err)
	}
	d.ID = id
	if d.Terms, err = r.StringSlice(); err != nil {
		return d, fmt.Errorf("model: document terms: %w", err)
	}
	return d, nil
}

// SortTerms sorts and deduplicates a term slice in place, returning the
// (possibly shortened) slice. Term sets throughout the system are kept in
// this canonical form.
func SortTerms(terms []string) []string {
	sort.Strings(terms)
	out := terms[:0]
	var prev string
	for i, t := range terms {
		if i > 0 && t == prev {
			continue
		}
		out = append(out, t)
		prev = t
	}
	return out
}
