package model

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/movesys/move/internal/codec"
)

func TestFilterValidate(t *testing.T) {
	cases := []struct {
		name string
		f    Filter
		err  error
	}{
		{"ok-any", Filter{ID: 1, Terms: []string{"a"}, Mode: MatchAny}, nil},
		{"ok-all", Filter{ID: 2, Terms: []string{"a", "b"}, Mode: MatchAll}, nil},
		{"ok-threshold", Filter{ID: 3, Terms: []string{"a"}, Mode: MatchThreshold, Threshold: 0.4}, nil},
		{"no-terms", Filter{ID: 4, Mode: MatchAny}, ErrNoTerms},
		{"bad-mode", Filter{ID: 5, Terms: []string{"a"}}, ErrBadMode},
		{"bad-threshold-zero", Filter{ID: 6, Terms: []string{"a"}, Mode: MatchThreshold}, ErrBadMode},
		{"bad-threshold-high", Filter{ID: 7, Terms: []string{"a"}, Mode: MatchThreshold, Threshold: 1.5}, ErrBadMode},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.f.Validate()
			if c.err == nil && err != nil {
				t.Fatalf("Validate = %v, want nil", err)
			}
			if c.err != nil && !errors.Is(err, c.err) {
				t.Fatalf("Validate = %v, want %v", err, c.err)
			}
		})
	}
}

func TestDocumentValidate(t *testing.T) {
	d := Document{ID: 1}
	if err := d.Validate(); !errors.Is(err, ErrNoTerms) {
		t.Fatalf("err = %v, want ErrNoTerms", err)
	}
	d.Terms = []string{"x"}
	if err := d.Validate(); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
}

func TestFilterEncodeDecode(t *testing.T) {
	f := Filter{ID: 99, Subscriber: "bob", Terms: []string{"cloud", "db"}, Mode: MatchThreshold, Threshold: 0.7}
	got, err := DecodeFilter(codec.NewReader(f.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("round trip: got %+v want %+v", got, f)
	}
}

func TestDocumentEncodeDecode(t *testing.T) {
	d := Document{ID: 7, Terms: []string{"alpha", "beta"}}
	got, err := DecodeDocument(codec.NewReader(d.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("round trip: got %+v want %+v", got, d)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, err := DecodeFilter(codec.NewReader([]byte{0xFF})); err == nil {
		t.Fatal("expected error for corrupt filter")
	}
	if _, err := DecodeDocument(codec.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty document")
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := Filter{ID: 1, Terms: []string{"a", "b"}, Mode: MatchAny}
	c := f.Clone()
	c.Terms[0] = "mutated"
	if f.Terms[0] != "a" {
		t.Fatal("Clone shares term slice")
	}
}

func TestTermSet(t *testing.T) {
	d := Document{Terms: []string{"x", "y"}}
	set := d.TermSet()
	if len(set) != 2 {
		t.Fatalf("TermSet len = %d", len(set))
	}
	if _, ok := set["x"]; !ok {
		t.Fatal("missing x")
	}
}

func TestSortTerms(t *testing.T) {
	got := SortTerms([]string{"b", "a", "b", "c", "a"})
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("SortTerms = %v", got)
	}
	if got := SortTerms(nil); len(got) != 0 {
		t.Fatalf("SortTerms(nil) = %v", got)
	}
}

func TestModeAndIDStrings(t *testing.T) {
	if MatchAny.String() != "any" || MatchAll.String() != "all" || MatchThreshold.String() != "threshold" {
		t.Fatal("mode names wrong")
	}
	if MatchMode(9).String() != "mode(9)" {
		t.Fatal("unknown mode string wrong")
	}
	if FilterID(12).String() != "f12" {
		t.Fatal("filter id string wrong")
	}
}

// TestFilterRoundTripProperty: encode/decode is the identity on arbitrary
// filters.
func TestFilterRoundTripProperty(t *testing.T) {
	prop := func(id uint64, sub string, terms []string, mode uint8, thr float64) bool {
		f := Filter{
			ID:         FilterID(id),
			Subscriber: sub,
			Terms:      terms,
			Mode:       MatchMode(mode),
			Threshold:  thr,
		}
		got, err := DecodeFilter(codec.NewReader(f.Encode()))
		if err != nil {
			return false
		}
		if got.ID != f.ID || got.Subscriber != f.Subscriber || got.Mode != f.Mode {
			return false
		}
		if len(got.Terms) != len(f.Terms) {
			return false
		}
		for i := range f.Terms {
			if got.Terms[i] != f.Terms[i] {
				return false
			}
		}
		// NaN thresholds cannot compare equal; skip the comparison then.
		return thr != thr || got.Threshold == f.Threshold
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
