package text

import "testing"

// TestStemPorterPaperExamples checks the examples given in Porter's 1980
// paper for each step of the algorithm.
func TestStemPorterPaperExamples(t *testing.T) {
	cases := map[string]string{
		// Step 1a.
		"caresses": "caress",
		"ponies":   "poni",
		"ties":     "ti",
		"caress":   "caress",
		"cats":     "cat",
		// Step 1b.
		"feed":      "feed",
		"agreed":    "agre",
		"plastered": "plaster",
		"bled":      "bled",
		"motoring":  "motor",
		"sing":      "sing",
		// Step 1b cleanup.
		"conflated": "conflat",
		"troubled":  "troubl",
		"sized":     "size",
		"hopping":   "hop",
		"tanned":    "tan",
		"falling":   "fall",
		"hissing":   "hiss",
		"fizzed":    "fizz",
		"failing":   "fail",
		"filing":    "file",
		// Step 1c.
		"happy": "happi",
		"sky":   "sky",
		// Step 2.
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		// Step 3.
		"triplicate":  "triplic",
		"formative":   "form",
		"formalize":   "formal",
		"electriciti": "electr",
		"electrical":  "electr",
		"hopeful":     "hope",
		"goodness":    "good",
		// Step 4.
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"gyroscopic":  "gyroscop",
		"adjustable":  "adjust",
		"defensible":  "defens",
		"irritant":    "irrit",
		"replacement": "replac",
		"adjustment":  "adjust",
		"dependent":   "depend",
		"adoption":    "adopt",
		"homologou":   "homolog",
		"communism":   "commun",
		"activate":    "activ",
		"angulariti":  "angular",
		"homologous":  "homolog",
		"effective":   "effect",
		"bowdlerize":  "bowdler",
		// Step 5a.
		"probate": "probat",
		"rate":    "rate",
		"cease":   "ceas",
		// Step 5b.
		"controll": "control",
		"roll":     "roll",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWordsUnchanged(t *testing.T) {
	for _, w := range []string{"", "a", "is", "by"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemIdempotentOnCommonVocabulary(t *testing.T) {
	// Stemming a stem should usually be stable for this vocabulary; this
	// guards against steps re-firing on their own output.
	words := []string{
		"running", "connection", "connections", "connective", "connected",
		"probabilistic", "realization", "organization",
	}
	for _, w := range words {
		once := Stem(w)
		twice := Stem(once)
		if once != twice {
			t.Errorf("Stem not stable: %q -> %q -> %q", w, once, twice)
		}
	}
}

func TestStemRelatedFormsShareStem(t *testing.T) {
	groups := [][]string{
		{"connect", "connected", "connecting", "connection", "connections"},
		{"happy", "happiness"},
		{"relate", "related", "relating"},
	}
	for _, g := range groups {
		want := Stem(g[0])
		for _, w := range g[1:] {
			if got := Stem(w); got != want {
				t.Errorf("Stem(%q) = %q, want %q (same as %q)", w, got, want, g[0])
			}
		}
	}
}
