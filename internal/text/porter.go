// Package text implements the document/filter preprocessing pipeline used
// by MOVE: tokenization, stop-word removal, and Porter stemming. It mirrors
// the preprocessing the paper applies to the TREC corpora ("pre-processed
// with the Porter algorithm and common stop words ... removed", §VI.A).
package text

// Stem reduces an English word to its stem using the Porter algorithm
// (M.F. Porter, "An algorithm for suffix stripping", Program 14(3), 1980).
// The input is expected to be lower-case ASCII letters; words shorter than
// three characters are returned unchanged, as in the reference
// implementation.
func Stem(word string) string {
	if len(word) < 3 {
		return word
	}
	s := stemmer{buf: []byte(word)}
	s.step1a()
	s.step1b()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5a()
	s.step5b()
	return string(s.buf)
}

// stemmer holds the working buffer for one word. All step methods mutate
// buf in place (truncation or suffix rewrite only, so no reallocation is
// needed beyond the initial copy).
type stemmer struct {
	buf []byte
}

// isConsonant reports whether buf[i] is a consonant per Porter's definition:
// a letter other than a, e, i, o, u, and other than y preceded by a
// consonant.
func (s *stemmer) isConsonant(i int) bool {
	switch s.buf[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.isConsonant(i - 1)
	default:
		return true
	}
}

// measure computes m, the number of VC (vowel-consonant) sequences in
// buf[:end], per the [C](VC)^m[V] decomposition.
func (s *stemmer) measure(end int) int {
	m := 0
	i := 0
	// Skip the optional initial consonant run [C].
	for i < end && s.isConsonant(i) {
		i++
	}
	for {
		// Vowel run.
		for i < end && !s.isConsonant(i) {
			i++
		}
		if i >= end {
			return m
		}
		// Consonant run closes one VC pair.
		for i < end && s.isConsonant(i) {
			i++
		}
		m++
		if i >= end {
			return m
		}
	}
}

// hasVowel reports whether buf[:end] contains a vowel.
func (s *stemmer) hasVowel(end int) bool {
	for i := 0; i < end; i++ {
		if !s.isConsonant(i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports whether buf[:end] ends with a doubled
// consonant (e.g. -tt, -ss).
func (s *stemmer) endsDoubleConsonant(end int) bool {
	if end < 2 {
		return false
	}
	if s.buf[end-1] != s.buf[end-2] {
		return false
	}
	return s.isConsonant(end - 1)
}

// endsCVC reports whether buf[:end] ends consonant-vowel-consonant where the
// final consonant is not w, x, or y. Used by the *o condition.
func (s *stemmer) endsCVC(end int) bool {
	if end < 3 {
		return false
	}
	if !s.isConsonant(end-3) || s.isConsonant(end-2) || !s.isConsonant(end-1) {
		return false
	}
	switch s.buf[end-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// hasSuffix reports whether buf ends with suf.
func (s *stemmer) hasSuffix(suf string) bool {
	n := len(s.buf)
	if n < len(suf) {
		return false
	}
	return string(s.buf[n-len(suf):]) == suf
}

// replaceSuffix replaces a trailing suffix of length lenSuf with repl when
// the measure of the remaining stem is greater than minM. Returns whether a
// replacement happened.
func (s *stemmer) replaceSuffix(suf, repl string, minM int) bool {
	if !s.hasSuffix(suf) {
		return false
	}
	stemEnd := len(s.buf) - len(suf)
	if s.measure(stemEnd) <= minM {
		return false
	}
	s.buf = append(s.buf[:stemEnd], repl...)
	return true
}

// step1a handles plurals: sses→ss, ies→i, ss→ss, s→"".
func (s *stemmer) step1a() {
	switch {
	case s.hasSuffix("sses"):
		s.buf = s.buf[:len(s.buf)-2]
	case s.hasSuffix("ies"):
		s.buf = s.buf[:len(s.buf)-2]
	case s.hasSuffix("ss"):
		// Keep.
	case s.hasSuffix("s"):
		s.buf = s.buf[:len(s.buf)-1]
	}
}

// step1b handles past tenses and gerunds: eed, ed, ing.
func (s *stemmer) step1b() {
	if s.hasSuffix("eed") {
		if s.measure(len(s.buf)-3) > 0 {
			s.buf = s.buf[:len(s.buf)-1]
		}
		return
	}
	cleanup := false
	if s.hasSuffix("ed") && s.hasVowel(len(s.buf)-2) {
		s.buf = s.buf[:len(s.buf)-2]
		cleanup = true
	} else if s.hasSuffix("ing") && s.hasVowel(len(s.buf)-3) {
		s.buf = s.buf[:len(s.buf)-3]
		cleanup = true
	}
	if !cleanup {
		return
	}
	switch {
	case s.hasSuffix("at"), s.hasSuffix("bl"), s.hasSuffix("iz"):
		s.buf = append(s.buf, 'e')
	case s.endsDoubleConsonant(len(s.buf)):
		last := s.buf[len(s.buf)-1]
		if last != 'l' && last != 's' && last != 'z' {
			s.buf = s.buf[:len(s.buf)-1]
		}
	case s.measure(len(s.buf)) == 1 && s.endsCVC(len(s.buf)):
		s.buf = append(s.buf, 'e')
	}
}

// step1c turns terminal y into i when the stem contains a vowel.
func (s *stemmer) step1c() {
	if s.hasSuffix("y") && s.hasVowel(len(s.buf)-1) {
		s.buf[len(s.buf)-1] = 'i'
	}
}

// step2 maps double suffixes to single ones when m > 0. Ordered by the
// penultimate letter as in Porter's original table.
func (s *stemmer) step2() {
	pairs := [...]struct{ suf, repl string }{
		{"ational", "ate"}, {"tional", "tion"},
		{"enci", "ence"}, {"anci", "ance"},
		{"izer", "ize"},
		{"abli", "able"}, {"alli", "al"}, {"entli", "ent"}, {"eli", "e"}, {"ousli", "ous"},
		{"ization", "ize"}, {"ation", "ate"}, {"ator", "ate"},
		{"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"}, {"ousness", "ous"},
		{"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
	}
	for _, p := range pairs {
		if s.hasSuffix(p.suf) {
			s.replaceSuffix(p.suf, p.repl, 0)
			return
		}
	}
}

// step3 strips -ic-, -full, -ness etc. when m > 0.
func (s *stemmer) step3() {
	pairs := [...]struct{ suf, repl string }{
		{"icate", "ic"}, {"ative", ""}, {"alize", "al"},
		{"iciti", "ic"}, {"ical", "ic"}, {"ful", ""}, {"ness", ""},
	}
	for _, p := range pairs {
		if s.hasSuffix(p.suf) {
			s.replaceSuffix(p.suf, p.repl, 0)
			return
		}
	}
}

// step4 strips -ant, -ence etc. when m > 1.
func (s *stemmer) step4() {
	sufs := [...]string{
		"al", "ance", "ence", "er", "ic", "able", "ible", "ant",
		"ement", "ment", "ent", "ion", "ou", "ism", "ate", "iti",
		"ous", "ive", "ize",
	}
	for _, suf := range sufs {
		if !s.hasSuffix(suf) {
			continue
		}
		stemEnd := len(s.buf) - len(suf)
		if suf == "ion" {
			// -ion is removed only after s or t.
			if stemEnd == 0 || (s.buf[stemEnd-1] != 's' && s.buf[stemEnd-1] != 't') {
				continue
			}
		}
		if s.measure(stemEnd) > 1 {
			s.buf = s.buf[:stemEnd]
		}
		return
	}
}

// step5a removes a terminal e when m > 1, or when m == 1 and the stem does
// not end CVC.
func (s *stemmer) step5a() {
	if !s.hasSuffix("e") {
		return
	}
	stemEnd := len(s.buf) - 1
	m := s.measure(stemEnd)
	if m > 1 || (m == 1 && !s.endsCVC(stemEnd)) {
		s.buf = s.buf[:stemEnd]
	}
}

// step5b maps -ll to -l when m > 1.
func (s *stemmer) step5b() {
	n := len(s.buf)
	if n >= 2 && s.buf[n-1] == 'l' && s.buf[n-2] == 'l' && s.measure(n-1) > 1 {
		s.buf = s.buf[:n-1]
	}
}
