package text

import (
	"sort"
	"strings"
)

// Options controls the preprocessing pipeline. The zero value enables the
// full paper pipeline (lower-casing, stop-word removal, Porter stemming,
// deduplication).
type Options struct {
	// KeepStopWords disables stop-word removal.
	KeepStopWords bool
	// NoStem disables Porter stemming.
	NoStem bool
	// MinTermLen drops terms shorter than this many bytes after stemming.
	// Zero means a default of 2.
	MinTermLen int
}

// Terms runs the preprocessing pipeline on raw text and returns the sorted,
// deduplicated term set — the representation both documents and filters use
// throughout the system (§III.A represents each as a set of terms).
func Terms(raw string, opts Options) []string {
	minLen := opts.MinTermLen
	if minLen == 0 {
		minLen = 2
	}
	seen := make(map[string]struct{})
	var terms []string
	emit := func(tok string) {
		if len(tok) < minLen {
			return
		}
		if !opts.KeepStopWords && IsStopWord(tok) {
			return
		}
		if !opts.NoStem {
			tok = Stem(tok)
			if len(tok) < minLen {
				return
			}
		}
		if _, dup := seen[tok]; dup {
			return
		}
		seen[tok] = struct{}{}
		terms = append(terms, tok)
	}

	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			emit(b.String())
			b.Reset()
		}
	}
	for _, r := range raw {
		switch {
		case r >= 'a' && r <= 'z':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r - 'A' + 'a')
		case r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	sort.Strings(terms)
	return terms
}

// NormalizeTerms applies stemming/stop-word filtering to an already
// tokenized list (e.g. a trace file with one term per field) and returns the
// sorted deduplicated set.
func NormalizeTerms(tokens []string, opts Options) []string {
	return Terms(strings.Join(tokens, " "), opts)
}
