package text

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermsFullPipeline(t *testing.T) {
	got := Terms("The quick brown foxes are RUNNING over the lazy dogs!", Options{})
	want := []string{"brown", "dog", "fox", "lazi", "quick", "run"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
}

func TestTermsDeduplicates(t *testing.T) {
	got := Terms("cache caches caching CACHED", Options{})
	if len(got) != 1 || got[0] != "cach" {
		t.Fatalf("Terms = %v, want [cach]", got)
	}
}

func TestTermsStopWordsKept(t *testing.T) {
	got := Terms("the and or", Options{KeepStopWords: true, NoStem: true})
	want := []string{"and", "or", "the"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
}

func TestTermsStopWordsDropped(t *testing.T) {
	if got := Terms("the and or", Options{}); len(got) != 0 {
		t.Fatalf("Terms = %v, want empty", got)
	}
}

func TestTermsMinLen(t *testing.T) {
	got := Terms("a bb ccc", Options{NoStem: true, MinTermLen: 3})
	if !reflect.DeepEqual(got, []string{"ccc"}) {
		t.Fatalf("Terms = %v, want [ccc]", got)
	}
}

func TestTermsDigitsRetained(t *testing.T) {
	got := Terms("ipv6 802 dot11", Options{NoStem: true})
	want := []string{"802", "dot11", "ipv6"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
}

func TestTermsPunctuationSplits(t *testing.T) {
	got := Terms("peer-to-peer pub/sub key_value", Options{KeepStopWords: true, NoStem: true})
	want := []string{"key", "peer", "pub", "sub", "to", "value"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
}

func TestNormalizeTerms(t *testing.T) {
	got := NormalizeTerms([]string{"Breaking", "NEWS", "breaking"}, Options{})
	want := []string{"break", "new"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NormalizeTerms = %v, want %v", got, want)
	}
}

func TestIsStopWord(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "yourselves"} {
		if !IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"cassandra", "filter", ""} {
		if IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = true, want false", w)
		}
	}
}

// TestTermsSortedAndUniqueProperty verifies two invariants of the term-set
// representation for arbitrary input: output is sorted and duplicate-free.
func TestTermsSortedAndUniqueProperty(t *testing.T) {
	prop := func(raw string) bool {
		terms := Terms(raw, Options{})
		if !sort.StringsAreSorted(terms) {
			return false
		}
		seen := make(map[string]struct{}, len(terms))
		for _, term := range terms {
			if _, dup := seen[term]; dup {
				return false
			}
			seen[term] = struct{}{}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestTermsOrderInsensitiveProperty verifies that the term set does not
// depend on input token order.
func TestTermsOrderInsensitiveProperty(t *testing.T) {
	prop := func(a, b, c string) bool {
		x := Terms(strings.Join([]string{a, b, c}, " "), Options{})
		y := Terms(strings.Join([]string{c, a, b}, " "), Options{})
		return reflect.DeepEqual(x, y)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestStemNeverGrowsProperty: Porter stemming never lengthens an
// all-lower-case ASCII word (every step truncates or rewrites a suffix with
// one no longer than what it removes, except the +e restorations which only
// follow longer removals).
func TestStemNeverGrowsProperty(t *testing.T) {
	prop := func(seed []byte) bool {
		if len(seed) == 0 {
			return true
		}
		w := make([]byte, 0, len(seed))
		for _, c := range seed {
			w = append(w, 'a'+c%26)
		}
		return len(Stem(string(w))) <= len(w)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
