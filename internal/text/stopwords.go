package text

// stopWords is the classic English stop-word list (the SMART/van Rijsbergen
// core subset) used to strip function words before indexing, matching the
// paper's preprocessing ("common stop words such as 'the', 'and', etc. were
// removed", §VI.A).
var stopWords = buildStopWords()

// stopWordList enumerates the stop words; kept as a slice so tests can
// verify coverage and so the set is built once, deterministically.
var stopWordList = []string{
	"a", "about", "above", "after", "again", "against", "all", "am", "an",
	"and", "any", "are", "as", "at", "be", "because", "been", "before",
	"being", "below", "between", "both", "but", "by", "can", "cannot",
	"could", "did", "do", "does", "doing", "down", "during", "each", "few",
	"for", "from", "further", "had", "has", "have", "having", "he", "her",
	"here", "hers", "herself", "him", "himself", "his", "how", "i", "if",
	"in", "into", "is", "it", "its", "itself", "me", "more", "most", "my",
	"myself", "no", "nor", "not", "of", "off", "on", "once", "only", "or",
	"other", "ought", "our", "ours", "ourselves", "out", "over", "own",
	"same", "she", "should", "so", "some", "such", "than", "that", "the",
	"their", "theirs", "them", "themselves", "then", "there", "these",
	"they", "this", "those", "through", "to", "too", "under", "until", "up",
	"very", "was", "we", "were", "what", "when", "where", "which", "while",
	"who", "whom", "why", "with", "would", "you", "your", "yours",
	"yourself", "yourselves",
}

// buildStopWords materializes the lookup set from stopWordList. Run once at
// package variable initialization, which is deterministic and has no
// side effects outside the returned value.
func buildStopWords() map[string]struct{} {
	set := make(map[string]struct{}, len(stopWordList))
	for _, w := range stopWordList {
		set[w] = struct{}{}
	}
	return set
}

// IsStopWord reports whether w (already lower-cased) is an English stop
// word.
func IsStopWord(w string) bool {
	_, ok := stopWords[w]
	return ok
}
