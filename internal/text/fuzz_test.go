package text

import (
	"sort"
	"strings"
	"testing"
)

// FuzzTokenize checks the invariants every consumer of Terms relies on —
// the ring hashes terms, the codec frames them, and the index keys posting
// lists by them, so the pipeline's output shape is load-bearing:
//
//   - never panics, for any input bytes
//   - output is sorted and strictly deduplicated
//   - every term is >= MinTermLen bytes of [a-z0-9] only
//   - deterministic: the same input yields the same terms
//   - stop-word removal only removes: Terms ⊆ Terms(KeepStopWords)
func FuzzTokenize(f *testing.F) {
	f.Add("Breaking news tonight: markets RALLY 7%!")
	f.Add("the a an and or of to in is was")
	f.Add("running runner ran runs easily flying")
	f.Add("")
	f.Add("    \t\n\r  ")
	f.Add("héllo wörld — naïve café ☃ 日本語 emoji 🎉 mixed ASCII2000")
	f.Add("a b c d e f g aa bb cc")
	f.Add(strings.Repeat("wikipedia ", 50))
	f.Add("x\x00y\xff\xfez invalid\xc3(utf8")

	f.Fuzz(func(t *testing.T, raw string) {
		terms := Terms(raw, Options{})

		for i, term := range terms {
			if len(term) < 2 {
				t.Fatalf("term %q shorter than default MinTermLen 2 (input %q)", term, raw)
			}
			for _, r := range term {
				if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9') {
					t.Fatalf("term %q contains %q outside [a-z0-9] (input %q)", term, r, raw)
				}
			}
			if i > 0 && terms[i-1] >= term {
				t.Fatalf("terms not sorted strictly ascending: %q >= %q (input %q)", terms[i-1], term, raw)
			}
		}
		if !sort.StringsAreSorted(terms) {
			t.Fatalf("terms not sorted: %v", terms)
		}

		again := Terms(raw, Options{})
		if len(again) != len(terms) {
			t.Fatalf("non-deterministic: %v then %v", terms, again)
		}
		for i := range terms {
			if again[i] != terms[i] {
				t.Fatalf("non-deterministic at %d: %v vs %v", i, terms, again)
			}
		}

		// Stop-word removal can only shrink the term set (both pipelines
		// stem, so the surviving stems are identical).
		kept := Terms(raw, Options{KeepStopWords: true})
		keptSet := make(map[string]struct{}, len(kept))
		for _, term := range kept {
			keptSet[term] = struct{}{}
		}
		for _, term := range terms {
			if _, ok := keptSet[term]; !ok {
				t.Fatalf("term %q in filtered output but not in KeepStopWords output %v (input %q)", term, kept, raw)
			}
		}

		// NormalizeTerms over the output must agree with re-running Terms
		// on the joined output (same pipeline by construction).
		joined := strings.Join(terms, " ")
		if n, r2 := NormalizeTerms(terms, Options{}), Terms(joined, Options{}); len(n) != len(r2) {
			t.Fatalf("NormalizeTerms disagrees with Terms on joined output: %v vs %v", n, r2)
		}
	})
}

// TestStopWordsFilteredPreStem pins the pipeline ordering the fuzz target's
// invariants rest on: stop words are dropped before stemming, so a token
// that IS a stop word never survives — but a non-stop-word may legally stem
// onto one ("doings" → "do"), which is why the fuzz target does not assert
// stop-word absence on the output.
func TestStopWordsFilteredPreStem(t *testing.T) {
	if got := Terms("the and doing was", Options{}); len(got) != 0 {
		t.Fatalf("stop-word-only input produced %v", got)
	}
	got := Terms("doings", Options{})
	if len(got) != 1 || got[0] != "do" {
		t.Fatalf("Terms(doings) = %v, want [do] (stem collides with a stop word by design)", got)
	}
}
