package debugserver

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"github.com/movesys/move/internal/metrics"
	"github.com/movesys/move/internal/trace"
)

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return body
}

func TestEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("rpc.retries").Add(3)
	h := reg.Histogram("publish.e2e")
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i+1) * time.Millisecond)
	}
	ring := trace.NewRing(8)
	sp := trace.New("publish", 1)
	sp.AddHop(trace.Hop{Stage: "column", Row: 1, Col: 0, Attempt: 1, Failover: true})
	sp.Finish()
	ring.Add(sp.Summary())

	s, err := Start(Config{
		Addr:     "127.0.0.1:0",
		Registry: reg,
		Traces:   ring,
		Info:     map[string]string{"id": "node-a"},
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	var dump metrics.Dump
	if err := json.Unmarshal(get(t, base+"/metrics"), &dump); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	if dump.Counters["rpc.retries"] != 3 {
		t.Fatalf("rpc.retries = %d, want 3", dump.Counters["rpc.retries"])
	}
	e2e, ok := dump.Histograms["publish.e2e"]
	if !ok {
		t.Fatalf("publish.e2e histogram missing from dump: %+v", dump.Histograms)
	}
	if e2e.Count != 100 || e2e.P50NS <= 0 || e2e.P99NS < e2e.P50NS {
		t.Fatalf("implausible publish.e2e snapshot: %+v", e2e)
	}

	var summaries []trace.Summary
	if err := json.Unmarshal(get(t, base+"/trace/last?n=4"), &summaries); err != nil {
		t.Fatalf("decode /trace/last: %v", err)
	}
	if len(summaries) != 1 || summaries[0].DocID != 1 || summaries[0].Failovers != 1 {
		t.Fatalf("unexpected /trace/last payload: %+v", summaries)
	}

	var health struct {
		Status string            `json:"status"`
		Info   map[string]string `json:"info"`
	}
	if err := json.Unmarshal(get(t, base+"/healthz"), &health); err != nil {
		t.Fatalf("decode /healthz: %v", err)
	}
	if health.Status != "ok" || health.Info["id"] != "node-a" {
		t.Fatalf("unexpected /healthz payload: %+v", health)
	}

	// pprof index must be wired on the same mux.
	if body := get(t, base+"/debug/pprof/"); len(body) == 0 {
		t.Fatal("/debug/pprof/ returned empty body")
	}
}

func TestNilBackends(t *testing.T) {
	s, err := Start(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	var dump metrics.Dump
	if err := json.Unmarshal(get(t, base+"/metrics"), &dump); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	var summaries []trace.Summary
	if err := json.Unmarshal(get(t, base+"/trace/last"), &summaries); err != nil {
		t.Fatalf("decode /trace/last: %v", err)
	}
	if len(summaries) != 0 {
		t.Fatalf("expected empty trace list, got %+v", summaries)
	}

	resp, err := http.Get(base + "/trace/last?n=bogus")
	if err != nil {
		t.Fatalf("GET bad n: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n: status %d, want 400", resp.StatusCode)
	}
}
