// Package debugserver is the optional observability endpoint of a MOVE
// node (moved -debug.addr): pprof profiling, a JSON dump of the metrics
// registry (counters plus histogram quantiles), and the ring of recent
// publish traces. It binds its own listener so the debug surface shares
// nothing with the data-path transport — a wedged publish pipeline must
// still be inspectable.
package debugserver

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"github.com/movesys/move/internal/metrics"
	"github.com/movesys/move/internal/trace"
)

// Config parameterizes a debug server.
type Config struct {
	// Addr is the listen address (host:port; port 0 picks a free port).
	Addr string
	// Registry backs /metrics; nil serves an empty dump.
	Registry *metrics.Registry
	// Traces backs /trace/last; nil serves an empty list.
	Traces *trace.Ring
	// Info is static node metadata served on /healthz (id, rack, ...).
	Info map[string]string
	// Health, if set, supplies live status fields merged into /healthz
	// (reallocation epoch, dual-read state, membership counts, ...).
	Health func() map[string]any
}

// Server is a running debug endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// defaultTraceCount bounds /trace/last responses without an n parameter.
const defaultTraceCount = 16

// Start binds the listener and serves in the background. Close releases it.
func Start(cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("debugserver: listen %s: %w", cfg.Addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var d metrics.Dump
		if cfg.Registry != nil {
			d = cfg.Registry.Dump()
		}
		writeJSON(w, d)
	})
	mux.HandleFunc("/trace/last", func(w http.ResponseWriter, r *http.Request) {
		n := defaultTraceCount
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 1 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		summaries := cfg.Traces.Last(n)
		if summaries == nil {
			summaries = []trace.Summary{}
		}
		writeJSON(w, summaries)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		body := map[string]any{"status": "ok", "info": cfg.Info}
		if cfg.Health != nil {
			for k, v := range cfg.Health() {
				body[k] = v
			}
		}
		writeJSON(w, body)
	})
	// pprof handlers are registered explicitly rather than through the
	// package's DefaultServeMux side effect, keeping the debug mux closed
	// over exactly what it serves.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() {
		// ErrServerClosed after Close; anything else is lost with the
		// process anyway (the debug surface is best-effort).
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }

// writeJSON serves v as indented JSON (these endpoints are read by humans
// and tests, not a scrape pipeline; bytes are not the constraint).
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
