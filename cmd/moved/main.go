// Command moved runs one MOVE server node over real TCP — the deployment
// mode of the system (the in-process cluster used by the benchmarks lives
// behind the same node implementation).
//
// A three-node cluster on one machine:
//
//	moved -id n0 -listen 127.0.0.1:7000 -peers n0=127.0.0.1:7000,n1=127.0.0.1:7001,n2=127.0.0.1:7002 &
//	moved -id n1 -listen 127.0.0.1:7001 -peers n0=127.0.0.1:7000,n1=127.0.0.1:7001,n2=127.0.0.1:7002 &
//	moved -id n2 -listen 127.0.0.1:7002 -peers n0=127.0.0.1:7000,n1=127.0.0.1:7001,n2=127.0.0.1:7002 &
//
// then drive it with movectl.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/movesys/move/internal/debugserver"
	"github.com/movesys/move/internal/delivery"
	"github.com/movesys/move/internal/gossip"
	"github.com/movesys/move/internal/metrics"
	"github.com/movesys/move/internal/node"
	"github.com/movesys/move/internal/resilience"
	"github.com/movesys/move/internal/ring"
	"github.com/movesys/move/internal/store"
	"github.com/movesys/move/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "moved: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	id := flag.String("id", "", "node id (must appear in -peers)")
	listen := flag.String("listen", "", "listen address host:port")
	peersFlag := flag.String("peers", "", "comma-separated id=host:port cluster map")
	rack := flag.String("rack", "rack-0", "rack label for placement")
	dir := flag.String("dir", "", "data directory ('' = in-memory)")
	gossipEvery := flag.Duration("gossip", time.Second, "gossip interval")
	debugAddr := flag.String("debug.addr", "", "debug HTTP listen address serving /metrics, /trace/last, /healthz and /debug/pprof ('' = disabled)")

	subAddr := flag.String("subscribe.addr", "", "subscriber session listen address host:port ('' = mailbox-only delivery)")
	subPolicy := flag.String("subscribe.policy", "drop-oldest", "slow-consumer policy: drop-oldest, coalesce-by-doc, disconnect")
	subQueue := flag.Int("subscribe.queue", 256, "per-subscriber delivery queue bound")
	subHeartbeat := flag.Duration("subscribe.heartbeat", 5*time.Second, "subscriber session ping interval (idle timeout is 4x)")
	subShards := flag.Int("subscribe.shards", delivery.DefaultShards, "session registry shard count (rounded up to a power of two)")
	subFlushDelay := flag.Duration("subscribe.flush-delay", 0, "event coalescing window (0 = flush immediately; higher trades latency for frames per syscall)")

	rpcConns := flag.Int("rpc.conns", 0, "striped TCP connections per peer (0 = derive from GOMAXPROCS)")
	rpcNoCoalesce := flag.Bool("rpc.no-coalesce", false, "disable the coalescing RPC writer (one write syscall pair per frame; comparison baseline)")
	rpcFlushDelay := flag.Duration("rpc.flush-delay", 0, "RPC writer coalescing window (0 = natural coalescing only)")
	rpcCoalesceBytes := flag.Int("rpc.coalesce-bytes", 0, "RPC flush-round size bound in bytes (0 = 64KiB)")

	retryAttempts := flag.Int("retry-attempts", 3, "max RPC attempts per destination (1 disables retries)")
	retryBase := flag.Duration("retry-base", 25*time.Millisecond, "base retry backoff (doubles per attempt, full jitter)")
	retryMax := flag.Duration("retry-max", time.Second, "backoff cap")
	rpcTimeout := flag.Duration("rpc-timeout", 2*time.Second, "per-attempt RPC timeout (0 = none)")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive failures before a peer's circuit opens")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "open-circuit cooldown before a half-open probe")

	faultDrop := flag.Float64("fault-drop", 0, "injected probability of dropping an outbound RPC (testing)")
	faultError := flag.Float64("fault-error", 0, "injected probability of losing an RPC response after delivery (testing)")
	faultDup := flag.Float64("fault-dup", 0, "injected probability of duplicating an outbound RPC (testing)")
	faultDelay := flag.Float64("fault-delay", 0, "injected probability of delaying an outbound RPC (testing)")
	faultDelayFor := flag.Duration("fault-delay-for", time.Millisecond, "injected delay duration")
	faultSeed := flag.Int64("fault-seed", 1, "fault-injection RNG seed")
	flag.Parse()

	if *id == "" || *listen == "" {
		return fmt.Errorf("-id and -listen are required")
	}
	peers, err := transport.ParsePeers(*peersFlag)
	if err != nil {
		return err
	}
	if _, ok := peers[ring.NodeID(*id)]; !ok {
		peers[ring.NodeID(*id)] = *listen
	}

	// Static ring from the peer table. Rack labels default to the local
	// rack for the local node and rack-0 for others; a production
	// deployment would carry racks in the peer table.
	r := ring.New(ring.Config{})
	for pid := range peers {
		prack := "rack-0"
		if pid == ring.NodeID(*id) {
			prack = *rack
		}
		if err := r.Add(ring.Member{ID: pid, Rack: prack}); err != nil {
			return err
		}
	}

	st, err := store.Open(*dir, store.Options{})
	if err != nil {
		return err
	}

	reg := metrics.NewRegistry()
	exec := resilience.New(resilience.Policy{
		MaxAttempts:      *retryAttempts,
		BaseDelay:        *retryBase,
		MaxDelay:         *retryMax,
		AttemptTimeout:   *rpcTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Retryable:        transport.IsAvailabilityError,
	}, reg)

	// The delivery tier: a session hub for subscribers whose home node is
	// this one, fed by deliver-batch RPCs from publishing entry nodes.
	var hub *delivery.Hub
	if *subAddr != "" {
		policy, err := delivery.ParsePolicy(*subPolicy)
		if err != nil {
			return err
		}
		hub = delivery.NewHub(delivery.Config{
			QueueCap:       *subQueue,
			Policy:         policy,
			Shards:         *subShards,
			FlushDelay:     *subFlushDelay,
			HeartbeatEvery: *subHeartbeat,
			Metrics:        reg,
		})
		defer hub.Stop()
	}

	var g *gossip.Gossiper
	nd, err := node.New(node.Config{
		ID:              ring.NodeID(*id),
		Rack:            *rack,
		Ring:            r,
		Store:           st,
		Resilience:      exec,
		Metrics:         reg,
		Delivery:        hub,
		RouteDeliveries: *subAddr != "",
		Gossip: func(from ring.NodeID, digest []byte) ([]byte, error) {
			return g.Handle(from, digest)
		},
	})
	if err != nil {
		return err
	}

	if hub != nil {
		ln, err := net.Listen("tcp", *subAddr)
		if err != nil {
			return err
		}
		subSrv := delivery.Serve(ln, hub, 5*time.Second)
		defer func() {
			_ = subSrv.Close()
		}()
		fmt.Printf("moved: subscriber sessions on %s (policy=%s queue=%d shards=%d)\n", subSrv.Addr(), *subPolicy, *subQueue, hub.Shards())
	}

	tn, err := transport.NewTCPOpts(ring.NodeID(*id), *listen, nd.Handle, transport.StaticResolver(peers), transport.TCPOptions{
		Conns:         *rpcConns,
		NoCoalesce:    *rpcNoCoalesce,
		FlushDelay:    *rpcFlushDelay,
		CoalesceBytes: *rpcCoalesceBytes,
		Metrics:       reg,
	})
	if err != nil {
		return err
	}
	defer func() {
		_ = tn.Close()
	}()

	// Node RPCs go through the (optionally fault-injecting) decorated
	// transport; gossip stays on the raw one so the failure detector sees
	// the real network, not the injected one.
	var dataPath transport.Transport = tn
	probs := transport.FaultProbs{
		Drop: *faultDrop, Error: *faultError, Duplicate: *faultDup,
		Delay: *faultDelay, DelayFor: *faultDelayFor,
	}
	if *faultDrop > 0 || *faultError > 0 || *faultDup > 0 || *faultDelay > 0 {
		dataPath = transport.NewFaulty(tn, transport.FaultConfig{Seed: *faultSeed, Default: probs})
		fmt.Printf("moved: fault injection on (drop=%.3f error=%.3f dup=%.3f delay=%.3f seed=%d)\n",
			*faultDrop, *faultError, *faultDup, *faultDelay, *faultSeed)
	}
	nd.Attach(dataPath)

	if *debugAddr != "" {
		ds, err := debugserver.Start(debugserver.Config{
			Addr:     *debugAddr,
			Registry: reg,
			Traces:   nd.Traces(),
			Info:     map[string]string{"id": *id, "rack": *rack, "listen": tn.Addr()},
			Health: func() map[string]any {
				committed, pending, dual := nd.EpochInfo()
				h := map[string]any{
					"epoch":     committed,
					"dual_read": dual,
					"filters":   nd.Stats().Filters,
				}
				if pending != 0 {
					h["pending_epoch"] = pending
				}
				ts := tn.Stats()
				h["transport_peers"] = ts.Peers
				h["transport_conns"] = ts.Conns
				h["transport_inbound"] = ts.Inbound
				h["transport_queued_bytes"] = ts.QueuedBytes
				if len(ts.PerPeer) > 0 {
					h["transport_peer_conns"] = ts.PerPeer
				}
				if hub != nil {
					h["delivery_sessions"] = hub.SessionCount()
					h["delivery_pending"] = hub.Pending()
					h["delivery_shards"] = hub.Shards()
					h["delivery_shard_sessions"] = hub.ShardSessions()
				}
				if g != nil {
					h["members_alive"] = len(g.Members())
				}
				return h
			},
		})
		if err != nil {
			return err
		}
		defer ds.Close()
		fmt.Printf("moved: debug server on http://%s (/metrics /trace/last /healthz /debug/pprof)\n", ds.Addr())
	}

	g, err = gossip.New(gossip.Config{
		Self:     gossip.Member{ID: ring.NodeID(*id), Rack: *rack, Addr: *listen},
		Interval: *gossipEvery,
		Send: func(ctx context.Context, to ring.NodeID, digest []byte) ([]byte, error) {
			return tn.Send(ctx, to, node.EncodeGossip(digest))
		},
		OnJoin: func(m gossip.Member) {
			fmt.Printf("moved: peer %s joined (%s)\n", m.ID, m.Addr)
		},
		OnLeave: func(dead ring.NodeID) {
			fmt.Printf("moved: peer %s declared dead\n", dead)
		},
		// Membership changes should trigger a reallocation round; moved has
		// no embedded coordinator, so log the signal an operator's
		// coordinator would consume.
		OnChange: func() {
			fmt.Printf("moved: membership changed; reallocation advised\n")
		},
	})
	if err != nil {
		return err
	}
	seeds := make([]gossip.Member, 0, len(peers))
	for pid, addr := range peers {
		if pid == ring.NodeID(*id) {
			continue
		}
		seeds = append(seeds, gossip.Member{ID: pid, Addr: addr})
	}
	g.SeedPeers(seeds...)
	g.Start()
	defer g.Stop()

	fmt.Printf("moved: node %s listening on %s (%d peers)\n", *id, tn.Addr(), len(peers))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	snap := reg.Snapshot()
	fmt.Printf("moved: shutting down (retries=%d giveups=%d breaker.open=%d failovers=%d)\n",
		snap["rpc.retries"], snap["rpc.giveups"], snap["breaker.open"], snap["publish.failover"])
	return nil
}
