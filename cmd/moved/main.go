// Command moved runs one MOVE server node over real TCP — the deployment
// mode of the system (the in-process cluster used by the benchmarks lives
// behind the same node implementation).
//
// A three-node cluster on one machine:
//
//	moved -id n0 -listen 127.0.0.1:7000 -peers n0=127.0.0.1:7000,n1=127.0.0.1:7001,n2=127.0.0.1:7002 &
//	moved -id n1 -listen 127.0.0.1:7001 -peers n0=127.0.0.1:7000,n1=127.0.0.1:7001,n2=127.0.0.1:7002 &
//	moved -id n2 -listen 127.0.0.1:7002 -peers n0=127.0.0.1:7000,n1=127.0.0.1:7001,n2=127.0.0.1:7002 &
//
// then drive it with movectl.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/movesys/move/internal/gossip"
	"github.com/movesys/move/internal/node"
	"github.com/movesys/move/internal/ring"
	"github.com/movesys/move/internal/store"
	"github.com/movesys/move/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "moved: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	id := flag.String("id", "", "node id (must appear in -peers)")
	listen := flag.String("listen", "", "listen address host:port")
	peersFlag := flag.String("peers", "", "comma-separated id=host:port cluster map")
	rack := flag.String("rack", "rack-0", "rack label for placement")
	dir := flag.String("dir", "", "data directory ('' = in-memory)")
	gossipEvery := flag.Duration("gossip", time.Second, "gossip interval")
	flag.Parse()

	if *id == "" || *listen == "" {
		return fmt.Errorf("-id and -listen are required")
	}
	peers, err := transport.ParsePeers(*peersFlag)
	if err != nil {
		return err
	}
	if _, ok := peers[ring.NodeID(*id)]; !ok {
		peers[ring.NodeID(*id)] = *listen
	}

	// Static ring from the peer table. Rack labels default to the local
	// rack for the local node and rack-0 for others; a production
	// deployment would carry racks in the peer table.
	r := ring.New(ring.Config{})
	for pid := range peers {
		prack := "rack-0"
		if pid == ring.NodeID(*id) {
			prack = *rack
		}
		if err := r.Add(ring.Member{ID: pid, Rack: prack}); err != nil {
			return err
		}
	}

	st, err := store.Open(*dir, store.Options{})
	if err != nil {
		return err
	}

	var g *gossip.Gossiper
	nd, err := node.New(node.Config{
		ID:    ring.NodeID(*id),
		Rack:  *rack,
		Ring:  r,
		Store: st,
		Gossip: func(from ring.NodeID, digest []byte) ([]byte, error) {
			return g.Handle(from, digest)
		},
	})
	if err != nil {
		return err
	}

	tn, err := transport.NewTCP(ring.NodeID(*id), *listen, nd.Handle, transport.StaticResolver(peers))
	if err != nil {
		return err
	}
	defer func() {
		_ = tn.Close()
	}()
	nd.Attach(tn)

	g, err = gossip.New(gossip.Config{
		Self:     gossip.Member{ID: ring.NodeID(*id), Rack: *rack, Addr: *listen},
		Interval: *gossipEvery,
		Send: func(ctx context.Context, to ring.NodeID, digest []byte) ([]byte, error) {
			return tn.Send(ctx, to, node.EncodeGossip(digest))
		},
		OnLeave: func(dead ring.NodeID) {
			fmt.Printf("moved: peer %s declared dead\n", dead)
		},
	})
	if err != nil {
		return err
	}
	seeds := make([]gossip.Member, 0, len(peers))
	for pid, addr := range peers {
		if pid == ring.NodeID(*id) {
			continue
		}
		seeds = append(seeds, gossip.Member{ID: pid, Addr: addr})
	}
	g.SeedPeers(seeds...)
	g.Start()
	defer g.Stop()

	fmt.Printf("moved: node %s listening on %s (%d peers)\n", *id, tn.Addr(), len(peers))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("moved: shutting down")
	return nil
}
