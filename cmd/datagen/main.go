// Command datagen generates and inspects the calibrated synthetic traces
// that stand in for the paper's datasets (§VI.A): MSN-like filter queries
// and TREC-WT/TREC-AP-like document corpora.
//
//	datagen -kind msn -n 10000 -out filters.txt
//	datagen -kind wt  -n 1000  -out docs.txt
//	datagen -kind ap  -n 100   -out docs.txt
//	datagen -kind msn -n 10000 -inspect   # print trace statistics
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"github.com/movesys/move/internal/dataset"
	"github.com/movesys/move/internal/stats"
	"github.com/movesys/move/internal/text"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	kind := flag.String("kind", "msn", "trace kind: msn, wt, ap")
	n := flag.Int("n", 10_000, "number of items to generate")
	vocab := flag.Int("vocab", 0, "vocabulary size (0 = kind default)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "output trace file ('' = stdout unless -inspect)")
	inspect := flag.Bool("inspect", false, "print trace statistics instead of the trace")
	from := flag.String("from", "", "convert a raw-text file (one document/query per line) into a preprocessed trace instead of generating")
	flag.Parse()

	var items [][]string
	if *from != "" {
		// Real-data path: run the paper's preprocessing (lower-casing,
		// stop-word removal, Porter stemming) over raw lines — how actual
		// TREC/MSN dumps become traces for `movebench -fig trace`.
		raw, err := os.ReadFile(*from)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(string(raw), "\n") {
			terms := text.Terms(line, text.Options{})
			if len(terms) == 0 {
				continue
			}
			items = append(items, terms)
		}
		if len(items) == 0 {
			return fmt.Errorf("no indexable lines in %s", *from)
		}
		*kind = "converted"
	} else {
		next, err := generator(*kind, *vocab, *seed)
		if err != nil {
			return err
		}
		items = dataset.Generate(*n, next)
	}

	if *inspect {
		return printStats(*kind, items)
	}
	if *out == "" {
		return dataset.WriteTrace(os.Stdout, items)
	}
	if err := dataset.SaveTrace(*out, items); err != nil {
		return err
	}
	fmt.Printf("wrote %d items to %s\n", len(items), *out)
	return nil
}

func generator(kind string, vocab int, seed int64) (func() []string, error) {
	switch kind {
	case "msn":
		v := vocab
		if v == 0 {
			v = 50_000
		}
		g, err := dataset.NewFilterGen(dataset.FilterConfig{DistinctTerms: v, Seed: seed})
		if err != nil {
			return nil, err
		}
		return g.Next, nil
	case "wt", "ap":
		ck := dataset.CorpusWT
		if kind == "ap" {
			ck = dataset.CorpusAP
		}
		v := vocab
		if v == 0 {
			v = 50_000
		}
		g, err := dataset.NewDocGen(dataset.CorpusConfig{Kind: ck, DistinctTerms: v, Seed: seed})
		if err != nil {
			return nil, err
		}
		return g.Next, nil
	default:
		return nil, fmt.Errorf("unknown kind %q (want msn, wt, ap)", kind)
	}
}

func printStats(kind string, items [][]string) error {
	c := stats.NewTermCounter()
	total := 0
	for _, terms := range items {
		c.Observe(terms)
		total += len(terms)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "kind\t%s\n", kind)
	fmt.Fprintf(w, "items\t%d\n", len(items))
	fmt.Fprintf(w, "distinct terms\t%d\n", c.Distinct())
	fmt.Fprintf(w, "mean terms/item\t%.3f\n", float64(total)/float64(len(items)))
	fmt.Fprintf(w, "entropy (bits)\t%.4f\n", c.Entropy())
	fmt.Fprintf(w, "top-100 mass\t%.4f\n", c.TopKMass(100))
	ranked := c.Ranked(5)
	for _, r := range ranked {
		fmt.Fprintf(w, "rank %d\t%s (%.4f)\n", r.Rank, r.Term, r.Rate)
	}
	return w.Flush()
}
