// Command movectl is the client for a moved cluster: it registers filters
// on the home nodes of their terms (§III.B) and publishes documents through
// the §V dissemination path, printing the matching subscribers.
//
//	movectl -peers n0=...,n1=... register -sub alice -query "breaking news"
//	movectl -peers n0=...,n1=... publish -text "breaking news tonight"
//	movectl -peers n0=...,n1=... watch -sub alice
//	movectl subscribe -addr 127.0.0.1:7100 -sub alice   # live session (moved -subscribe.addr)
//	movectl -peers n0=...,n1=... allocate          # run a §IV allocation round
//	movectl -peers n0=...,n1=... stats
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"github.com/movesys/move/internal/alloc"
	"github.com/movesys/move/internal/delivery"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/node"
	"github.com/movesys/move/internal/ring"
	"github.com/movesys/move/internal/text"
	"github.com/movesys/move/internal/trace"
	"github.com/movesys/move/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "movectl: %v\n", err)
		os.Exit(1)
	}
}

// client is a thin entry-point: it shares the ring computation with the
// servers so it can route directly to home nodes (O(1)-hop, no proxy).
type client struct {
	ring *ring.Ring
	tn   *transport.TCPNode
}

func newClient(peersFlag string) (*client, error) {
	peers, err := transport.ParsePeers(peersFlag)
	if err != nil {
		return nil, err
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("-peers is required")
	}
	r := ring.New(ring.Config{})
	for pid := range peers {
		if err := r.Add(ring.Member{ID: pid, Rack: "rack-0"}); err != nil {
			return nil, err
		}
	}
	tn, err := transport.NewTCP("movectl-client", "127.0.0.1:0", rejectInbound, transport.StaticResolver(peers))
	if err != nil {
		return nil, err
	}
	return &client{ring: r, tn: tn}, nil
}

func rejectInbound(context.Context, ring.NodeID, []byte) ([]byte, error) {
	return nil, fmt.Errorf("movectl is a client; it serves no requests")
}

func (c *client) close() {
	_ = c.tn.Close()
}

func run() error {
	peersFlag := flag.String("peers", "", "comma-separated id=host:port cluster map")
	timeout := flag.Duration("timeout", 10*time.Second, "per-operation timeout")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		return fmt.Errorf("usage: movectl -peers ... <register|publish|watch|subscribe|allocate|stats> [options]")
	}

	// subscribe talks the subscriber session protocol directly to one
	// moved's -subscribe.addr listener; it needs no cluster client.
	if args[0] == "subscribe" {
		fs := flag.NewFlagSet("subscribe", flag.ExitOnError)
		addr := fs.String("addr", "", "subscriber session address of the owner node (moved -subscribe.addr)")
		sub := fs.String("sub", "", "subscriber name")
		resume := fs.Uint64("resume", 0, "last acknowledged sequence number (resume cursor)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *addr == "" || *sub == "" {
			return fmt.Errorf("subscribe requires -addr and -sub")
		}
		return subscribe(*addr, *sub, *resume)
	}

	c, err := newClient(*peersFlag)
	if err != nil {
		return err
	}
	defer c.close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch args[0] {
	case "register":
		fs := flag.NewFlagSet("register", flag.ExitOnError)
		sub := fs.String("sub", "", "subscriber name")
		query := fs.String("query", "", "keyword query")
		id := fs.Uint64("id", uint64(time.Now().UnixNano()), "filter id (default derived from time)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *sub == "" || *query == "" {
			return fmt.Errorf("register requires -sub and -query")
		}
		return c.register(ctx, model.FilterID(*id), *sub, *query)
	case "publish":
		fs := flag.NewFlagSet("publish", flag.ExitOnError)
		content := fs.String("text", "", "document text")
		showTrace := fs.Bool("trace", false, "print the per-term hop path (home hops, grid columns, failovers)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *content == "" {
			return fmt.Errorf("publish requires -text")
		}
		return c.publish(ctx, *content, *showTrace)
	case "watch":
		fs := flag.NewFlagSet("watch", flag.ExitOnError)
		sub := fs.String("sub", "", "subscriber name")
		since := fs.Uint64("since", 0, "fetch deliveries after this sequence number")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *sub == "" {
			return fmt.Errorf("watch requires -sub")
		}
		return c.watch(ctx, *sub, *since)
	case "allocate":
		fs := flag.NewFlagSet("allocate", flag.ExitOnError)
		capacity := fs.Int("capacity", 3_000_000, "per-node filter capacity C")
		epoch := fs.Uint64("epoch", uint64(time.Now().Unix()), "allocation epoch")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		return c.allocate(ctx, *capacity, *epoch)
	case "stats":
		return c.stats(ctx)
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// allocate runs one §IV allocation round from the client acting as the
// paper's dedicated coordinator node: pull per-node statistics, solve the
// MOVE optimization problem, and command each hot home node to migrate its
// filters onto an allocation grid.
func (c *client) allocate(ctx context.Context, capacity int, epoch uint64) error {
	members := c.ring.Members()
	type load struct {
		id    ring.NodeID
		stats node.StatsResp
	}
	var loads []load
	var totalFilters, totalPublishes, totalScanned int64
	for _, m := range members {
		raw, err := c.tn.Send(ctx, m.ID, node.EncodeStatsPull())
		if err != nil {
			return fmt.Errorf("stats pull from %s: %w", m.ID, err)
		}
		s, err := node.DecodeStatsResp(raw)
		if err != nil {
			return err
		}
		loads = append(loads, load{id: m.ID, stats: s})
		totalFilters += s.Filters
		totalPublishes += s.HomePublishes
		totalScanned += s.PostingsScanned
	}
	if totalFilters == 0 {
		return fmt.Errorf("no filters registered; nothing to allocate")
	}

	units := make([]alloc.Unit, 0, len(loads))
	for _, l := range loads {
		u := alloc.Unit{Key: string(l.id)}
		u.Popularity = float64(l.stats.Filters) / float64(totalFilters)
		if totalPublishes > 0 {
			u.Frequency = float64(l.stats.HomePublishes) / float64(totalPublishes)
		}
		if totalScanned > 0 {
			u.Load = float64(l.stats.PostingsScanned) / float64(totalScanned)
		}
		units = append(units, u)
	}
	factors, err := alloc.Compute(alloc.Input{
		Units:        units,
		TotalFilters: int(totalFilters),
		TotalDocs:    int(maxI64(totalPublishes, 1)),
		Nodes:        len(members),
		Capacity:     capacity,
	}, alloc.StrategyGeneral, nil)
	if err != nil {
		return err
	}

	installed := 0
	for _, f := range factors {
		if f.Rows*f.Cols <= 1 {
			continue
		}
		home := ring.NodeID(f.Key)
		peers, err := c.ring.AllocationNodesOf(home, f.Rows*f.Cols, ring.PlacementHybrid)
		if err != nil {
			return err
		}
		grid, err := alloc.FitGrid(f.Rows, f.Cols, peers)
		if err != nil || grid.Size() <= 1 {
			continue
		}
		if _, err := c.tn.Send(ctx, home, node.EncodeAllocate(epoch, grid)); err != nil {
			return fmt.Errorf("allocate on %s: %w", home, err)
		}
		fmt.Printf("allocated %s onto a %dx%d grid (r=%.2f)\n", home, grid.Rows(), grid.Cols(), f.Ratio)
		installed++
	}
	fmt.Printf("allocation epoch %d: %d grid(s) installed across %d nodes\n", epoch, installed, len(members))
	return nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// subscribe opens a persistent delivery session and streams matched
// documents as they are published, acknowledging each batch so the server
// prunes its redelivery window. On reconnect, pass the last printed seq as
// -resume to receive exactly the unacknowledged tail.
func subscribe(addr, sub string, resume uint64) error {
	cl, err := delivery.Dial(addr, sub, resume)
	if err != nil {
		return err
	}
	defer cl.Close()
	h := cl.Hello()
	fmt.Printf("subscribed %s at %s (ack=%d next=%d redeliver=%d)\n", sub, addr, h.AckSeq, h.NextSeq, h.Redeliver)
	for {
		msg, err := cl.Recv()
		if err != nil {
			return fmt.Errorf("session closed: %w", err)
		}
		if msg.Bye != "" {
			fmt.Printf("server closed session: %s\n", msg.Bye)
			return nil
		}
		for _, ev := range msg.Events {
			fmt.Printf("seq=%d doc=%d filters=%v terms=%v\n", ev.Seq, ev.DocID, ev.Filters, ev.Terms)
		}
		if len(msg.Events) > 0 {
			if err := cl.Ack(msg.Events[len(msg.Events)-1].Seq); err != nil {
				return err
			}
		}
	}
}

// watch fetches a subscriber's queued deliveries from its mailbox node.
func (c *client) watch(ctx context.Context, sub string, since uint64) error {
	home, err := c.ring.HomeNode("subscriber/" + sub)
	if err != nil {
		return err
	}
	raw, err := c.tn.Send(ctx, home, node.EncodeFetch(sub, since, 100))
	if err != nil {
		return fmt.Errorf("fetch from %s: %w", home, err)
	}
	ds, err := node.DecodeDeliveries(raw)
	if err != nil {
		return err
	}
	if len(ds) == 0 {
		fmt.Printf("no deliveries for %s after seq %d\n", sub, since)
		return nil
	}
	for _, d := range ds {
		fmt.Printf("seq=%d doc=%d filter=%s terms=%v\n", d.Seq, d.DocID, d.Filter, d.Terms)
	}
	return nil
}

// register places the filter on the home node of each of its terms.
func (c *client) register(ctx context.Context, id model.FilterID, sub, query string) error {
	terms := text.Terms(query, text.Options{})
	if len(terms) == 0 {
		return fmt.Errorf("query has no indexable terms")
	}
	f := model.Filter{ID: id, Subscriber: sub, Terms: terms, Mode: model.MatchAny}
	byHome := make(map[ring.NodeID][]string)
	for _, t := range terms {
		home, err := c.ring.HomeNode(t)
		if err != nil {
			return err
		}
		byHome[home] = append(byHome[home], t)
	}
	for home, postingTerms := range byHome {
		payload := node.EncodeRegister(node.RegisterReq{Filter: f, PostingTerms: postingTerms})
		if _, err := c.tn.Send(ctx, home, payload); err != nil {
			return fmt.Errorf("register on %s: %w", home, err)
		}
	}
	fmt.Printf("registered filter %s for %s: terms=%v on %d home node(s)\n", f.ID, sub, terms, len(byHome))
	return nil
}

// publish groups the document's terms by home node, sends each home ONE
// multi-term frame (the document encoded once plus that node's term list),
// and merges the matches. With showTrace, the hop path each home node
// reports (grid columns visited, failover substitutions) is printed after
// the matches.
func (c *client) publish(ctx context.Context, content string, showTrace bool) error {
	terms := text.Terms(content, text.Options{})
	if len(terms) == 0 {
		return fmt.Errorf("document has no indexable terms")
	}
	doc := model.Document{ID: uint64(time.Now().UnixNano()), Terms: terms}
	byHome := make(map[ring.NodeID][]string)
	var homes []ring.NodeID
	for _, t := range terms {
		home, err := c.ring.HomeNode(t)
		if err != nil {
			return err
		}
		if _, ok := byHome[home]; !ok {
			homes = append(homes, home)
		}
		byHome[home] = append(byHome[home], t)
	}
	seen := make(map[model.FilterID]string)
	var hops []trace.Hop
	for _, home := range homes {
		homeTerms := byHome[home]
		start := time.Now()
		raw, err := c.tn.Send(ctx, home, node.EncodePublishMultiHome(node.PublishMultiReq{Doc: doc, Terms: homeTerms}))
		if err != nil {
			return fmt.Errorf("publish terms %v to %s: %w", homeTerms, home, err)
		}
		resp, err := node.DecodeMatchResp(raw)
		if err != nil {
			return err
		}
		elapsed := time.Since(start).Nanoseconds()
		for _, t := range homeTerms {
			hops = append(hops, trace.Hop{Stage: "home", To: string(home), Term: t, ElapsedNS: elapsed})
		}
		hops = append(hops, resp.Hops...)
		for _, m := range resp.Matches {
			seen[m.Filter] = m.Subscriber
		}
	}
	if showTrace {
		printHops(hops)
	}
	fmt.Printf("published doc with %d terms to %d home node(s); %d matching filter(s)\n", len(terms), len(homes), len(seen))
	// Route deliveries to each subscriber's session owner: one
	// deliver-batch frame per owner node carrying every notification it
	// hosts. Owners with a live hub (moved -subscribe.addr) push to the
	// session; others fall back to the mailbox `movectl watch` reads.
	matches := make([]node.Match, 0, len(seen))
	for id, sub := range seen {
		fmt.Printf("  -> %s (%s)\n", sub, id)
		matches = append(matches, node.Match{Filter: id, Subscriber: sub})
	}
	byOwner := make(map[ring.NodeID][]delivery.Notification)
	for _, nt := range node.GroupMatchesBySub(matches) {
		owner, err := c.ring.HomeNode("subscriber/" + nt.Sub)
		if err != nil {
			return err
		}
		byOwner[owner] = append(byOwner[owner], nt)
	}
	for owner, notifs := range byOwner {
		payload := node.EncodeDeliverBatch(&delivery.Batch{DocID: doc.ID, Terms: doc.Terms, Notifs: notifs})
		if _, err := c.tn.Send(ctx, owner, payload); err != nil {
			return fmt.Errorf("deliver batch to %s: %w", owner, err)
		}
	}
	return nil
}

// printHops renders a publish hop path, one line per hop, flagging
// failovers (a column served by a substitute partition row) and lost
// columns (every replica row exhausted).
func printHops(hops []trace.Hop) {
	fmt.Printf("trace (%d hop(s)):\n", len(hops))
	for _, h := range hops {
		line := fmt.Sprintf("  [%s]", h.Stage)
		if h.Term != "" {
			line += fmt.Sprintf(" term=%q", h.Term)
		}
		if h.To != "" {
			line += " -> " + h.To
		}
		if h.Stage == "column" {
			line += fmt.Sprintf(" row=%d col=%d", h.Row, h.Col)
		}
		if h.Failover {
			line += fmt.Sprintf(" FAILOVER(attempt=%d)", h.Attempt)
		}
		if h.Lost {
			line += " LOST"
		}
		if h.Err != "" {
			line += " err=" + h.Err
		}
		line += fmt.Sprintf(" (%.2fms)", float64(h.ElapsedNS)/1e6)
		fmt.Println(line)
	}
}

// stats pulls and prints every node's counters.
func (c *client) stats(ctx context.Context) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "node\tfilters\tpostings\tdocs\tpostings-scanned\n")
	for _, m := range c.ring.Members() {
		raw, err := c.tn.Send(ctx, m.ID, node.EncodeStatsPull())
		if err != nil {
			fmt.Fprintf(w, "%s\t(down: %v)\n", m.ID, err)
			continue
		}
		s, err := node.DecodeStatsResp(raw)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\n", m.ID, s.Filters, s.Postings, s.DocsProcessed, s.PostingsScanned)
	}
	return w.Flush()
}
