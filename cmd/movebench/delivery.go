package main

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	"github.com/movesys/move/internal/cluster"
	"github.com/movesys/move/internal/delivery"
	"github.com/movesys/move/internal/model"
)

// deliveryReport is the JSON document `movebench -fig delivery` writes:
// end-to-end subscriber delivery at scale — every published document fans
// out through match routing to live sessions (100k in the CI profile, 1M
// in the full-scale profile), and every event's publish→SendEvents
// latency is recorded. Checked in as BENCH_delivery.json (CI profile) and
// BENCH_delivery_1m.json (full scale) so PRs carry delivery-tier
// baselines alongside the publish, alloc, and churn ones.
type deliveryReport struct {
	GeneratedBy string `json:"generated_by"`
	Nodes       int    `json:"nodes"`
	Subscribers int    `json:"subscribers"`
	Docs        int    `json:"docs"`
	Seed        int64  `json:"seed"`
	// Shards / Wave / FlushBatch / FlushDelayMS pin the hub and workload
	// shape the numbers were measured under: the session-registry shard
	// count, how many documents are published before each drain barrier,
	// the per-SendEvents batch bound, and the writer coalescing window.
	Shards       int     `json:"shards"`
	Wave         int     `json:"wave"`
	FlushBatch   int     `json:"flush_batch"`
	FlushDelayMS float64 `json:"flush_delay_ms"`

	// DeliveredEvents is the total number of events that reached
	// subscriber connections; FanoutAmplification is the mean number of
	// subscriber deliveries per published document.
	DeliveredEvents     int64   `json:"delivered_events"`
	FanoutAmplification float64 `json:"fanout_amplification"`
	// DeliveryP50MS / DeliveryP99MS summarize publish-call-to-SendEvents
	// latency across every delivered event.
	DeliveryP50MS float64 `json:"delivery_p50_ms"`
	DeliveryP99MS float64 `json:"delivery_p99_ms"`
	// RouteRPCsPerDoc shows the per-destination batching: one deliver-batch
	// RPC per session-owner node, however many subscribers it hosts.
	RouteRPCsPerDoc float64 `json:"route_rpcs_per_doc"`
	// FramesPerSyscall is the writer-coalescing ratio: wire frames handed
	// to connections per physical flush (Flusher.Flush call). The 1M
	// profile hard-requires > 2.0 — the point of the coalescing writer.
	FramesPerSyscall float64 `json:"frames_per_syscall"`
	FlushSyscalls    int64   `json:"flush_syscalls"`
	// Dropped and Redelivered MUST be zero in this figure (auto-acking
	// readers, bounded queues never overflow); any other value fails the
	// run before the report is written.
	Dropped     int64 `json:"dropped"`
	Redelivered int64 `json:"redelivered"`
}

// deliveryOpts shapes one delivery-figure run. Zero values select the CI
// profile: per-doc drain, 256-event flush batches, no coalescing delay.
type deliveryOpts struct {
	Subs       int
	Docs       int
	Shards     int           // session registry shards (0 = delivery.DefaultShards)
	Wave       int           // docs published before each drain barrier (<=1 = per-doc)
	FlushBatch int           // max events per SendEvents frame (0 = 256)
	FlushDelay time.Duration // writer coalescing window (0 = flush immediately)
}

// deliveryTolerance / deliverySlackMS: the regression budget against
// -baseline on delivery p99 — fail only when both the relative and the
// absolute budget are exceeded.
const deliveryTolerance = 0.10
const deliverySlackMS = 25.0

// deliveryFanoutTolerance bounds drift of the workload itself: the same
// seed must produce the same oracle fan-out within ±10%, or the numbers
// are not comparable.
const deliveryFanoutTolerance = 0.10

// deliveryFPSFloor is the hard acceptance gate on writer coalescing at
// full scale: at >=1M live sessions the flush path must merge more than
// two frames into each physical write on average.
const deliveryFPSFloor = 2.0

func checkDeliveryBaseline(path string, rep deliveryReport) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("delivery: baseline %s not found, skipping regression check\n", path)
			return nil
		}
		return fmt.Errorf("read baseline: %w", err)
	}
	var base deliveryReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	if base.Subscribers != 0 && base.Subscribers != rep.Subscribers {
		fmt.Printf("delivery: baseline %s is a %d-subscriber profile (this run: %d), skipping regression check\n",
			path, base.Subscribers, rep.Subscribers)
		return nil
	}
	if base.DeliveryP99MS > 0 {
		limit := base.DeliveryP99MS*(1+deliveryTolerance) + deliverySlackMS
		if rep.DeliveryP99MS > limit {
			return fmt.Errorf("delivery_p99_ms regression: %.2fms vs baseline %.2fms (budget +%d%% +%.0fms)",
				rep.DeliveryP99MS, base.DeliveryP99MS, int(deliveryTolerance*100), deliverySlackMS)
		}
		fmt.Printf("delivery: p99 %.2fms within budget of baseline %.2fms\n", rep.DeliveryP99MS, base.DeliveryP99MS)
	}
	if base.FanoutAmplification > 0 {
		lo := base.FanoutAmplification * (1 - deliveryFanoutTolerance)
		hi := base.FanoutAmplification * (1 + deliveryFanoutTolerance)
		if rep.FanoutAmplification < lo || rep.FanoutAmplification > hi {
			return fmt.Errorf("fanout drift: %.1f events/doc vs baseline %.1f (±%d%% comparability bound)",
				rep.FanoutAmplification, base.FanoutAmplification, int(deliveryFanoutTolerance*100))
		}
		fmt.Printf("delivery: fanout %.1f events/doc comparable to baseline %.1f\n", rep.FanoutAmplification, base.FanoutAmplification)
	}
	return nil
}

// benchConn is the simulated subscriber endpoint: it acks everything
// immediately and records, per document, how many events arrived, to whom
// (as an order-independent hash sum), and the publish→delivery latency.
// It also mirrors the wireConn buffering contract — SendEvents buffers a
// frame, Flush reports the physical write — so the in-process bench
// measures the same frames-per-syscall ratio a TCP deployment would.
type benchConn struct {
	hub     *delivery.Hub
	sub     string
	subHash uint64
	st      *benchDeliveryState

	// Buffered-writer accounting. The hub serializes SendEvents/Flush per
	// session under its flush lock, so no mutex is needed.
	pendingFrames int
	pendingBytes  int
}

// benchDeliveryState is shared by every benchConn: per-doc accounting
// indexed by slot (docID-1 — the cluster is fresh, so publishes number
// their documents 1..docs in order).
type benchDeliveryState struct {
	startNS  []atomic.Int64  // publish-call timestamp per doc slot
	count    []atomic.Int64  // events delivered per doc slot
	hashSum  []atomic.Uint64 // sum of subscriber-name hashes per doc slot
	total    atomic.Int64
	phantoms atomic.Int64 // events for docs not yet (or never) published
	reg      histObserver
}

type histObserver interface{ Observe(time.Duration) }

func (c *benchConn) SendHello(delivery.HelloInfo) error { return nil }
func (c *benchConn) SendPing() error                    { return nil }
func (c *benchConn) SendBye(string) error               { return nil }
func (c *benchConn) Close() error                       { return nil }

func (c *benchConn) SendEvents(evs []*delivery.Event) error {
	now := time.Now().UnixNano()
	for _, ev := range evs {
		slot := int(ev.DocID) - 1
		if slot < 0 || slot >= len(c.st.count) {
			c.st.phantoms.Add(1)
			continue
		}
		start := c.st.startNS[slot].Load()
		if start == 0 {
			c.st.phantoms.Add(1)
			continue
		}
		c.st.reg.Observe(time.Duration(now - start))
		c.st.count[slot].Add(1)
		c.st.hashSum[slot].Add(c.subHash)
		c.st.total.Add(1)
	}
	// One events frame buffered; sizes mirror the wire codec's
	// length-prefixed batch encoding closely enough for the bytes metric.
	c.pendingFrames++
	c.pendingBytes += 16
	for _, ev := range evs {
		c.pendingBytes += 24 + 4*len(ev.Filters)
	}
	c.hub.Ack(c.sub, evs[len(evs)-1].Seq)
	return nil
}

// Flush implements delivery.Flusher: the hub calls it once per flush
// round, exactly where a wireConn would issue its single write syscall.
func (c *benchConn) Flush() error {
	if c.pendingFrames > 0 {
		c.hub.ObserveFlush(c.pendingFrames, c.pendingBytes)
		c.pendingFrames, c.pendingBytes = 0, 0
	}
	return nil
}

func subNameHash(sub string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(sub))
	return h.Sum64()
}

// runDeliveryFig stands up a 20-node cluster with the delivery tier
// enabled, registers one filter per simulated subscriber, attaches every
// subscriber as a live in-process session on its owner node's hub, then
// publishes opts.Docs documents in waves of opts.Wave. After each wave it
// waits for the fan-out to drain and verifies every document's delivered
// set — count and subscriber-hash sum — against both the publish's own
// match set and a brute-force inverted-index oracle. At >=1M subscribers
// the run additionally requires frames_per_syscall > 2.0.
func runDeliveryFig(outPath, baselinePath string, nodes int, opts deliveryOpts, seed int64) error {
	subs, docs := opts.Subs, opts.Docs
	if subs < 1 || docs < 1 {
		return fmt.Errorf("delivery: need at least 1 subscriber and 1 document")
	}
	wave := opts.Wave
	if wave < 1 {
		wave = 1
	}
	flushBatch := opts.FlushBatch
	if flushBatch <= 0 {
		flushBatch = 256
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = delivery.DefaultShards
	}
	capacity := 1_000_000
	if subs*4 > capacity {
		capacity = subs * 4
	}
	c, err := cluster.New(cluster.Config{
		Scheme:   cluster.SchemeMove,
		Nodes:    nodes,
		RackSize: 4,
		Capacity: capacity,
		Seed:     seed,
		Delivery: &delivery.Config{
			QueueCap:   1024,
			WindowCap:  4096,
			FlushBatch: flushBatch,
			FlushDelay: opts.FlushDelay,
			Shards:     shards,
			Policy:     delivery.DropOldest,
			// HeartbeatEvery left zero: auto-acking in-process conns never
			// idle out, so no janitor is needed.
		},
	})
	if err != nil {
		return err
	}
	defer c.Close()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))

	// Vocabulary: ~5000 terms under a Zipf popularity curve, the shape
	// §VI.A measures for real filter workloads. Each subscriber registers
	// one 2-term MatchAny filter; each document carries 8 distinct terms.
	const vocab = 5000
	zipf := rand.NewZipf(rng, 1.3, 4.0, vocab-1)
	term := func() string { return fmt.Sprintf("t%04d", zipf.Uint64()) }

	st := &benchDeliveryState{
		startNS: make([]atomic.Int64, docs),
		count:   make([]atomic.Int64, docs),
		hashSum: make([]atomic.Uint64, docs),
		reg:     c.Metrics().Histogram("delivery.e2e.latency"),
	}

	// Register + attach every subscriber; build the brute-force oracle as
	// an inverted index term -> subscriber ordinals.
	posting := make(map[string][]int32)
	subTerms := make([][2]string, subs)
	subHashes := make([]uint64, subs)
	fmt.Printf("delivery: registering and attaching %d subscribers on %d nodes (%d shards/hub)...\n", subs, nodes, shards)
	for i := 0; i < subs; i++ {
		sub := fmt.Sprintf("sub%06d", i)
		t1, t2 := term(), term()
		for t2 == t1 {
			t2 = term()
		}
		if _, err := c.Register(ctx, sub, []string{t1, t2}, model.MatchAny, 0); err != nil {
			return fmt.Errorf("register %s: %w", sub, err)
		}
		subTerms[i] = [2]string{t1, t2}
		subHashes[i] = subNameHash(sub)
		posting[t1] = append(posting[t1], int32(i))
		posting[t2] = append(posting[t2], int32(i))

		owner, err := c.SubscriberOwner(sub)
		if err != nil {
			return err
		}
		hub := c.DeliveryHub(owner)
		conn := &benchConn{hub: hub, sub: sub, subHash: subHashes[i], st: st}
		if _, _, err := hub.Attach(sub, conn, 0); err != nil {
			return fmt.Errorf("attach %s: %w", sub, err)
		}
		if (i+1)%200_000 == 0 {
			fmt.Printf("delivery: %d/%d subscribers attached\n", i+1, subs)
		}
	}

	// oracleFor returns the distinct subscribers any of the doc's terms
	// reach, as (count, hash-sum) — enough to prove set equality against
	// what actually arrived without materializing per-doc subscriber sets.
	mark := make([]int32, subs) // doc ordinal +1, reused across docs
	oracleFor := func(docOrd int32, terms []string) (int64, uint64) {
		var n int64
		var sum uint64
		for _, t := range terms {
			for _, s := range posting[t] {
				if mark[s] != docOrd {
					mark[s] = docOrd
					n++
					sum += subHashes[s]
				}
			}
		}
		return n, sum
	}

	// Per-wave drain budget: a fixed floor, the coalescing window (events
	// may legitimately sit buffered for up to ~2 ticks), and an
	// event-volume term (expected fan-out is ~subs/4 events per doc;
	// budget ~10x a 1M-events/sec drain rate).
	drainBudget := 30*time.Second + 4*opts.FlushDelay +
		time.Duration(float64(wave)*float64(subs)/400_000*float64(time.Second))

	fmt.Printf("delivery: publishing %d documents in waves of %d...\n", docs, wave)
	var expectedTotal int64
	routeRPCs0 := c.Metrics().Counter("delivery.route.rpcs").Value()
	wantNs := make([]int64, docs)
	wantSums := make([]uint64, docs)
	for d0 := 0; d0 < docs; d0 += wave {
		w := wave
		if d0+w > docs {
			w = docs - d0
		}
		for j := 0; j < w; j++ {
			d := d0 + j
			terms := make([]string, 0, 8)
			seen := make(map[string]struct{}, 8)
			for len(terms) < 8 {
				t := term()
				if _, dup := seen[t]; !dup {
					seen[t] = struct{}{}
					terms = append(terms, t)
				}
			}
			wantN, wantSum := oracleFor(int32(d+1), terms)
			wantNs[d], wantSums[d] = wantN, wantSum

			st.startNS[d].Store(time.Now().UnixNano())
			res, err := c.Publish(ctx, terms)
			if err != nil {
				return fmt.Errorf("publish doc %d: %w", d+1, err)
			}
			if int(res.DocID) != d+1 {
				return fmt.Errorf("doc %d: unexpected DocID %d", d+1, res.DocID)
			}
			// Match layer vs oracle.
			var gotN int64
			var gotSum uint64
			distinct := make(map[string]struct{}, wantN)
			for _, m := range res.Matches {
				if _, dup := distinct[m.Subscriber]; !dup {
					distinct[m.Subscriber] = struct{}{}
					gotN++
					gotSum += subNameHash(m.Subscriber)
				}
			}
			if gotN != wantN || gotSum != wantSum {
				return fmt.Errorf("doc %d: match set diverged from oracle (got %d subs, want %d)", d+1, gotN, wantN)
			}
			expectedTotal += wantN
		}

		// Drain the wave: every matched subscriber's event must arrive
		// (auto-ack keeps queues empty, so this bounds delivery latency).
		deadline := time.Now().Add(drainBudget)
		for j := 0; j < w; j++ {
			d := d0 + j
			for st.count[d].Load() < wantNs[d] {
				if time.Now().After(deadline) {
					return fmt.Errorf("doc %d: delivery stalled at %d/%d events", d+1, st.count[d].Load(), wantNs[d])
				}
				time.Sleep(100 * time.Microsecond)
			}
			if n, sum := st.count[d].Load(), st.hashSum[d].Load(); n != wantNs[d] || sum != wantSums[d] {
				return fmt.Errorf("doc %d: delivered set diverged from oracle (%d events, want %d)", d+1, n, wantNs[d])
			}
		}
	}

	// Hard gates: exactly the oracle's events, none dropped, none phantom,
	// none needing redelivery.
	if st.phantoms.Load() != 0 {
		return fmt.Errorf("delivery: %d events arrived for unpublished documents", st.phantoms.Load())
	}
	if st.total.Load() != expectedTotal {
		return fmt.Errorf("delivery: %d events delivered, oracle expects %d", st.total.Load(), expectedTotal)
	}
	snap := c.Metrics().Snapshot()
	dropped := snap["delivery.drops.oldest"] + snap["delivery.drops.disconnect"]
	lost := snap["delivery.route.lost"]
	if dropped != 0 || lost != 0 {
		return fmt.Errorf("delivery: %d dropped, %d route-lost; figure requires zero", dropped, lost)
	}

	hist := c.Metrics().Histograms()["delivery.e2e.latency"]
	routeRPCs := c.Metrics().Counter("delivery.route.rpcs").Value() - routeRPCs0
	flushFrames := snap["delivery.flush.frames"]
	flushSyscalls := snap["delivery.flush.syscalls"]
	var fps float64
	if flushSyscalls > 0 {
		fps = float64(flushFrames) / float64(flushSyscalls)
	}
	if subs >= 1_000_000 && fps <= deliveryFPSFloor {
		return fmt.Errorf("delivery: frames_per_syscall %.2f at %d subscribers; full-scale profile requires > %.1f",
			fps, subs, deliveryFPSFloor)
	}
	rep := deliveryReport{
		GeneratedBy:         "movebench -fig delivery",
		Nodes:               nodes,
		Subscribers:         subs,
		Docs:                docs,
		Seed:                seed,
		Shards:              shards,
		Wave:                wave,
		FlushBatch:          flushBatch,
		FlushDelayMS:        float64(opts.FlushDelay) / float64(time.Millisecond),
		DeliveredEvents:     st.total.Load(),
		FanoutAmplification: float64(expectedTotal) / float64(docs),
		DeliveryP50MS:       float64(hist.P50NS) / 1e6,
		DeliveryP99MS:       float64(hist.P99NS) / 1e6,
		RouteRPCsPerDoc:     float64(routeRPCs) / float64(docs),
		FramesPerSyscall:    fps,
		FlushSyscalls:       flushSyscalls,
		Dropped:             dropped,
		Redelivered:         snap["delivery.redelivered"],
	}
	if baselinePath != "" {
		if err := checkDeliveryBaseline(baselinePath, rep); err != nil {
			return err
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("delivery: %d subscribers, %d docs, %d events (%.1f/doc), p50 %.2fms p99 %.2fms, %.1f route RPCs/doc, %.2f frames/syscall, 0 dropped -> %s\n",
		rep.Subscribers, rep.Docs, rep.DeliveredEvents, rep.FanoutAmplification,
		rep.DeliveryP50MS, rep.DeliveryP99MS, rep.RouteRPCsPerDoc, rep.FramesPerSyscall, outPath)
	return nil
}
