package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/movesys/move/internal/cluster"
	"github.com/movesys/move/internal/dataset"
	"github.com/movesys/move/internal/metrics"
	"github.com/movesys/move/internal/model"
)

// benchReport is the JSON document `movebench -fig bench` writes: the
// end-to-end publish latency distribution plus match throughput for a
// MOVE cluster under an MSN/TREC-calibrated workload, for both the
// single-document and the coalescing batch publish paths. Checked into
// the repo as BENCH_publish.json so PRs carry a latency baseline.
type benchReport struct {
	GeneratedBy string `json:"generated_by"`
	Scheme      string `json:"scheme"`
	Nodes       int    `json:"nodes"`
	Filters     int    `json:"filters"`
	Docs        int    `json:"docs"`
	Seed        int64  `json:"seed"`
	// RPCLatencyMS is the simulated one-way RPC latency of the fabric.
	RPCLatencyMS float64 `json:"rpc_latency_ms"`

	// PublishE2E is the node-side publish.e2e latency histogram (ns),
	// snapshotted after the single-publish phase only so the batch phase
	// cannot contaminate the regression baseline.
	PublishE2E metrics.HistogramSnapshot `json:"publish_e2e"`
	// PublishFanout is the per-term home-RPC latency histogram (ns).
	PublishFanout metrics.HistogramSnapshot `json:"publish_fanout"`

	ElapsedMS      float64 `json:"elapsed_ms"`
	DocsPerSec     float64 `json:"docs_per_sec"`
	MatchesTotal   int64   `json:"matches_total"`
	MatchesPerSec  float64 `json:"matches_per_sec"`
	FiltersMatched int64   `json:"filters_matched"`

	// Entry→home wire accounting for the single-publish phase: RPC frames
	// sent and their payload bytes (publish.home.rpcs / publish.home.bytes),
	// absolute and per document. The per-doc figures are regression-guarded
	// (benchWireTolerance): the multi-term coalescing win this baseline
	// records must not silently erode back toward one-RPC-per-term.
	HomeRPCs            int64   `json:"home_rpcs"`
	HomeRPCsPerDoc      float64 `json:"home_rpcs_per_doc"`
	HomeWireBytes       int64   `json:"home_wire_bytes"`
	HomeWireBytesPerDoc float64 `json:"home_wire_bytes_per_doc"`
	// Batch-phase counterparts (frames are shared by many documents, so
	// per-doc figures drop well below the single-phase ones).
	BatchHomeRPCsPerDoc      float64 `json:"batch_home_rpcs_per_doc"`
	BatchHomeWireBytesPerDoc float64 `json:"batch_home_wire_bytes_per_doc"`

	// Batch figure: the same pregenerated documents re-published through
	// Cluster.PublishBatch (coalesced frames, worker-pool drain).
	BatchElapsedMS    float64 `json:"batch_elapsed_ms"`
	BatchDocsPerSec   float64 `json:"batch_docs_per_sec"`
	BatchMatchesTotal int64   `json:"batch_matches_total"`
	// BatchSpeedup is batch_docs_per_sec / docs_per_sec.
	BatchSpeedup float64 `json:"batch_speedup"`
	// PublishBatchSize is the coalesced-frame size distribution
	// (dimensionless: 1 "ns" = 1 document in the frame).
	PublishBatchSize metrics.HistogramSnapshot `json:"publish_batch_size"`

	Counters map[string]int64 `json:"counters"`
}

// benchRPCLatency is the simulated one-way RPC latency of the bench
// cluster's in-memory fabric — a LAN-scale cost per delivery, so the
// figures price RPC count the way a deployment would instead of the
// free function calls of a bare memnet. Recorded in the report.
const benchRPCLatency = 2 * time.Millisecond

// benchP95Tolerance is the regression budget enforced against -baseline:
// a new publish.e2e p95 more than 20% above the checked-in baseline
// fails the run (and CI).
const benchP95Tolerance = 0.20

// benchWireTolerance is the regression budget for the wire-efficiency
// figures: home RPCs per document and home wire bytes per document more
// than 10% above the checked-in baseline fail the run (and CI).
const benchWireTolerance = 0.10

// checkBaseline compares a fresh report against the checked-in baseline,
// failing on a >benchP95Tolerance publish.e2e p95 regression. A missing
// baseline file is not an error — first runs have nothing to compare.
func checkBaseline(path string, rep benchReport) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("bench: baseline %s not found, skipping regression check\n", path)
			return nil
		}
		return fmt.Errorf("read baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	if base.PublishE2E.P95NS <= 0 {
		fmt.Printf("bench: baseline %s has no publish.e2e p95, skipping regression check\n", path)
		return nil
	}
	limit := float64(base.PublishE2E.P95NS) * (1 + benchP95Tolerance)
	if got := float64(rep.PublishE2E.P95NS); got > limit {
		return fmt.Errorf("publish.e2e p95 regression: %.2fms vs baseline %.2fms (budget +%d%%)",
			got/1e6, float64(base.PublishE2E.P95NS)/1e6, int(benchP95Tolerance*100))
	}
	fmt.Printf("bench: publish.e2e p95 %.2fms within +%d%% of baseline %.2fms\n",
		float64(rep.PublishE2E.P95NS)/1e6, int(benchP95Tolerance*100), float64(base.PublishE2E.P95NS)/1e6)
	if err := checkWireFigure("home_rpcs_per_doc", rep.HomeRPCsPerDoc, base.HomeRPCsPerDoc); err != nil {
		return err
	}
	if err := checkWireFigure("home_wire_bytes_per_doc", rep.HomeWireBytesPerDoc, base.HomeWireBytesPerDoc); err != nil {
		return err
	}
	return nil
}

// checkWireFigure enforces benchWireTolerance on one wire-efficiency
// figure. A zero baseline value means the checked-in report predates the
// figure; skip rather than fail, the next committed report fills it in.
func checkWireFigure(name string, got, base float64) error {
	if base <= 0 {
		fmt.Printf("bench: baseline has no %s, skipping regression check\n", name)
		return nil
	}
	if got > base*(1+benchWireTolerance) {
		return fmt.Errorf("%s regression: %.2f vs baseline %.2f (budget +%d%%)",
			name, got, base, int(benchWireTolerance*100))
	}
	fmt.Printf("bench: %s %.2f within +%d%% of baseline %.2f\n",
		name, got, int(benchWireTolerance*100), base)
	return nil
}

// runBench publishes a calibrated workload through an in-process MOVE
// cluster — once sequentially, once through the coalescing batch
// pipeline — and writes the latency/throughput report to outPath. With a
// non-empty baselinePath the fresh numbers are checked against the
// checked-in report before it is overwritten.
func runBench(outPath, baselinePath string, nodes, filters, docs int, seed int64) error {
	c, err := cluster.New(cluster.Config{
		Scheme:     cluster.SchemeMove,
		Nodes:      nodes,
		Seed:       seed,
		RPCLatency: benchRPCLatency,
	})
	if err != nil {
		return err
	}
	fg, err := dataset.NewFilterGen(dataset.FilterConfig{DistinctTerms: 20_000, Seed: seed})
	if err != nil {
		return err
	}
	dg, err := dataset.NewDocGen(dataset.CorpusConfig{
		Kind: dataset.CorpusWT, DistinctTerms: 20_000, Seed: seed + 1,
	})
	if err != nil {
		return err
	}

	ctx := context.Background()
	for i := 0; i < filters; i++ {
		if _, err := c.Register(ctx, fmt.Sprintf("bench-sub-%d", i), fg.Next(), model.MatchAny, 0); err != nil {
			return fmt.Errorf("register filter %d: %w", i, err)
		}
	}

	// Both phases publish the same pregenerated documents, so the batch
	// speedup is measured on an identical workload.
	docTerms := make([][]string, docs)
	for i := range docTerms {
		docTerms[i] = dg.Next()
	}

	var matches int64
	matchedFilters := make(map[model.FilterID]struct{})
	start := time.Now()
	for i, terms := range docTerms {
		res, err := c.Publish(ctx, terms)
		if err != nil {
			return fmt.Errorf("publish doc %d: %w", i, err)
		}
		matches += int64(len(res.Matches))
		for _, m := range res.Matches {
			matchedFilters[m.Filter] = struct{}{}
		}
	}
	elapsed := time.Since(start)
	// Snapshot publish.e2e now: the batch phase records into the same
	// histogram and must not skew the single-publish baseline.
	singleDump := c.Metrics().Dump()

	batchStart := time.Now()
	results, err := c.PublishBatch(ctx, docTerms)
	if err != nil {
		return fmt.Errorf("batch publish: %w", err)
	}
	batchElapsed := time.Since(batchStart)
	var batchMatches int64
	for _, res := range results {
		batchMatches += int64(len(res.Matches))
	}

	dump := c.Metrics().Dump()
	homeRPCs := singleDump.Counters["publish.home.rpcs"]
	homeBytes := singleDump.Counters["publish.home.bytes"]
	batchHomeRPCs := dump.Counters["publish.home.rpcs"] - homeRPCs
	batchHomeBytes := dump.Counters["publish.home.bytes"] - homeBytes
	rep := benchReport{
		GeneratedBy:    "movebench -fig bench",
		Scheme:         c.Scheme().String(),
		Nodes:          nodes,
		Filters:        filters,
		Docs:           docs,
		Seed:           seed,
		RPCLatencyMS:   float64(benchRPCLatency.Nanoseconds()) / 1e6,
		PublishE2E:     singleDump.Histograms["publish.e2e"],
		PublishFanout:  singleDump.Histograms["publish.fanout"],
		ElapsedMS:      float64(elapsed.Nanoseconds()) / 1e6,
		DocsPerSec:     float64(docs) / elapsed.Seconds(),
		MatchesTotal:   matches,
		MatchesPerSec:  float64(matches) / elapsed.Seconds(),
		FiltersMatched: int64(len(matchedFilters)),

		HomeRPCs:                 homeRPCs,
		HomeRPCsPerDoc:           float64(homeRPCs) / float64(docs),
		HomeWireBytes:            homeBytes,
		HomeWireBytesPerDoc:      float64(homeBytes) / float64(docs),
		BatchHomeRPCsPerDoc:      float64(batchHomeRPCs) / float64(docs),
		BatchHomeWireBytesPerDoc: float64(batchHomeBytes) / float64(docs),

		BatchElapsedMS:    float64(batchElapsed.Nanoseconds()) / 1e6,
		BatchDocsPerSec:   float64(docs) / batchElapsed.Seconds(),
		BatchMatchesTotal: batchMatches,
		BatchSpeedup:      elapsed.Seconds() / batchElapsed.Seconds(),
		PublishBatchSize:  dump.Histograms["publish.batch.size"],

		Counters: dump.Counters,
	}
	if baselinePath != "" {
		if err := checkBaseline(baselinePath, rep); err != nil {
			return err
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench: %d docs through %d nodes in %.1fms (p50=%.2fms p95=%.2fms p99=%.2fms e2e) -> %s\n",
		docs, nodes, rep.ElapsedMS,
		float64(rep.PublishE2E.P50NS)/1e6, float64(rep.PublishE2E.P95NS)/1e6, float64(rep.PublishE2E.P99NS)/1e6,
		outPath)
	fmt.Printf("bench: batch publish %d docs in %.1fms (%.1f docs/s, %.2fx vs single, mean frame %.1f docs)\n",
		docs, rep.BatchElapsedMS, rep.BatchDocsPerSec, rep.BatchSpeedup, float64(rep.PublishBatchSize.MeanNS))
	fmt.Printf("bench: %.1f home RPCs/doc (%.0f B/doc on the wire), batch %.1f RPCs/doc (%.0f B/doc)\n",
		rep.HomeRPCsPerDoc, rep.HomeWireBytesPerDoc, rep.BatchHomeRPCsPerDoc, rep.BatchHomeWireBytesPerDoc)
	return nil
}
