package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/movesys/move/internal/cluster"
	"github.com/movesys/move/internal/dataset"
	"github.com/movesys/move/internal/metrics"
	"github.com/movesys/move/internal/model"
)

// benchReport is the JSON document `movebench -fig bench` writes: the
// end-to-end publish latency distribution plus match throughput for a
// MOVE cluster under an MSN/TREC-calibrated workload. Checked into the
// repo as BENCH_publish.json so PRs carry a latency baseline.
type benchReport struct {
	GeneratedBy string `json:"generated_by"`
	Scheme      string `json:"scheme"`
	Nodes       int    `json:"nodes"`
	Filters     int    `json:"filters"`
	Docs        int    `json:"docs"`
	Seed        int64  `json:"seed"`

	// PublishE2E is the node-side publish.e2e latency histogram (ns).
	PublishE2E metrics.HistogramSnapshot `json:"publish_e2e"`
	// PublishFanout is the per-term home-RPC latency histogram (ns).
	PublishFanout metrics.HistogramSnapshot `json:"publish_fanout"`

	ElapsedMS      float64 `json:"elapsed_ms"`
	DocsPerSec     float64 `json:"docs_per_sec"`
	MatchesTotal   int64   `json:"matches_total"`
	MatchesPerSec  float64 `json:"matches_per_sec"`
	FiltersMatched int64   `json:"filters_matched"`

	Counters map[string]int64 `json:"counters"`
}

// runBench publishes a calibrated workload through an in-process MOVE
// cluster and writes the latency/throughput report to outPath.
func runBench(outPath string, nodes, filters, docs int, seed int64) error {
	c, err := cluster.New(cluster.Config{
		Scheme: cluster.SchemeMove,
		Nodes:  nodes,
		Seed:   seed,
	})
	if err != nil {
		return err
	}
	fg, err := dataset.NewFilterGen(dataset.FilterConfig{DistinctTerms: 20_000, Seed: seed})
	if err != nil {
		return err
	}
	dg, err := dataset.NewDocGen(dataset.CorpusConfig{
		Kind: dataset.CorpusWT, DistinctTerms: 20_000, Seed: seed + 1,
	})
	if err != nil {
		return err
	}

	ctx := context.Background()
	for i := 0; i < filters; i++ {
		if _, err := c.Register(ctx, fmt.Sprintf("bench-sub-%d", i), fg.Next(), model.MatchAny, 0); err != nil {
			return fmt.Errorf("register filter %d: %w", i, err)
		}
	}

	var matches int64
	matchedFilters := make(map[model.FilterID]struct{})
	start := time.Now()
	for i := 0; i < docs; i++ {
		res, err := c.Publish(ctx, dg.Next())
		if err != nil {
			return fmt.Errorf("publish doc %d: %w", i, err)
		}
		matches += int64(len(res.Matches))
		for _, m := range res.Matches {
			matchedFilters[m.Filter] = struct{}{}
		}
	}
	elapsed := time.Since(start)

	dump := c.Metrics().Dump()
	rep := benchReport{
		GeneratedBy:    "movebench -fig bench",
		Scheme:         c.Scheme().String(),
		Nodes:          nodes,
		Filters:        filters,
		Docs:           docs,
		Seed:           seed,
		PublishE2E:     dump.Histograms["publish.e2e"],
		PublishFanout:  dump.Histograms["publish.fanout"],
		ElapsedMS:      float64(elapsed.Nanoseconds()) / 1e6,
		DocsPerSec:     float64(docs) / elapsed.Seconds(),
		MatchesTotal:   matches,
		MatchesPerSec:  float64(matches) / elapsed.Seconds(),
		FiltersMatched: int64(len(matchedFilters)),
		Counters:       dump.Counters,
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench: %d docs through %d nodes in %.1fms (p50=%.2fms p95=%.2fms p99=%.2fms e2e) -> %s\n",
		docs, nodes, rep.ElapsedMS,
		float64(rep.PublishE2E.P50NS)/1e6, float64(rep.PublishE2E.P95NS)/1e6, float64(rep.PublishE2E.P99NS)/1e6,
		outPath)
	return nil
}
