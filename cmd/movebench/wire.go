package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/movesys/move/internal/delivery"
	"github.com/movesys/move/internal/metrics"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/node"
	"github.com/movesys/move/internal/ring"
	"github.com/movesys/move/internal/transport"
)

// wireReport is the JSON document `movebench -fig wire` writes — the first
// figure in the repo measured over real sockets instead of memnet. The
// harness launches opts.Nodes separate `moved` processes on loopback TCP,
// registers one filter per subscriber, attaches every subscriber as a live
// TCP delivery session, then drives concurrent batched publishes through
// the client's real TCP transport, verifying each document's match set and
// the full delivery fan-out against a brute-force posting-map oracle. The
// whole run happens twice — coalescing RPC writer on and off — so the
// checked-in BENCH_wire.json carries its own comparison baseline.
type wireReport struct {
	GeneratedBy string `json:"generated_by"`
	Nodes       int    `json:"nodes"`
	Subscribers int    `json:"subscribers"`
	Docs        int    `json:"docs"`
	Concurrency int    `json:"concurrency"`
	Seed        int64  `json:"seed"`
	// FlushDelayMS is the writer coalescing window both sides ran with
	// (0 = natural coalescing only: frames arriving during the previous
	// write share the next syscall).
	FlushDelayMS float64 `json:"flush_delay_ms"`

	Coalesced   wireConfigReport `json:"coalesced"`
	Uncoalesced wireConfigReport `json:"uncoalesced"`
	// SpeedupDocsPerSec = Coalesced.DocsPerSec / Uncoalesced.DocsPerSec;
	// the acceptance gate requires >= 1.20.
	SpeedupDocsPerSec float64 `json:"speedup_docs_per_sec"`
}

// wireConfigReport is one coalescing configuration's measurements.
type wireConfigReport struct {
	Coalesce   bool    `json:"coalesce"`
	DocsPerSec float64 `json:"docs_per_sec"`
	// PublishP50MS/P99MS time the full per-document pipeline over real
	// sockets: every home-node publish RPC plus every deliver-batch RPC.
	PublishP50MS float64 `json:"publish_p50_ms"`
	PublishP99MS float64 `json:"publish_p99_ms"`
	// RPCSyscallsPerDoc counts physical write syscalls on the RPC wire
	// (client plus every daemon, scraped from /metrics) per published
	// document; FramesPerSyscall is frames merged into each of them.
	RPCSyscallsPerDoc float64 `json:"rpc_syscalls_per_doc"`
	FramesPerSyscall  float64 `json:"frames_per_syscall"`
	FlushFrames       int64   `json:"flush_frames"`
	FlushSyscalls     int64   `json:"flush_syscalls"`
	// DeliveredEvents is the oracle-verified end-to-end fan-out per
	// measured round: every event that reached a live subscriber session
	// over TCP.
	DeliveredEvents int64 `json:"delivered_events"`
}

// wireOpts shapes one wire-figure run.
type wireOpts struct {
	Nodes       int
	Subs        int
	Docs        int
	Concurrency int           // concurrent publisher goroutines
	FlushDelay  time.Duration // writer coalescing window for the coalesced config
	MovedBin    string        // prebuilt moved binary ("" = go build into a temp dir)
	Peers       string        // existing cluster map (multi-host mode): skip spawning and gates
}

// Acceptance gates for the checked-in loopback figure (ISSUE 10): the
// coalescing writer must merge more than two frames per write syscall
// under concurrent batched publish, and beat the coalescing-off
// configuration by >= 20% docs/sec at identical node/doc counts. The
// regression guard against -baseline allows 10% docs/sec drift.
const (
	wireFPSFloor     = 2.0
	wireSpeedupFloor = 1.20
	wireTolerance    = 0.10
)

const wireVocab = 2000

// wireRounds is how many times each configuration publishes the document
// set; the best round is reported (see wireCluster.runRound).
const wireRounds = 2

// wireWorkload is the deterministic workload plus its brute-force oracle:
// per-document expected subscriber count and order-independent hash sum
// (FNV-1a over subscriber names, the delivery bench's scheme).
type wireWorkload struct {
	subs    []string
	filters [][]string // per-sub filter terms (one 2-term MatchAny filter each)
	docs    [][]string // per-doc terms (8 distinct uniform draws)

	expCount []int
	expHash  []uint64
	expTotal int64
}

// buildWireWorkload draws filter terms Zipf-skewed and document terms
// uniformly from a shared vocabulary — the paper's §VI.A observation that
// popular filter terms overlap only weakly with document bodies. The
// resulting per-document fan-out stays moderate, so the figure measures
// the RPC wire rather than raw session fan-out (which BENCH_delivery.json
// already covers at 1M-subscriber scale).
func buildWireWorkload(subs, docs int, seed int64) *wireWorkload {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.1, 1, wireVocab-1)
	distinct := func(k int, draw func() uint64) []string {
		out := make([]string, 0, k)
		seen := map[string]bool{}
		for len(out) < k {
			t := fmt.Sprintf("term-%04d", draw())
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
		return out
	}
	zipfDraw := zipf.Uint64
	uniformDraw := func() uint64 { return uint64(rng.Intn(wireVocab)) }

	wl := &wireWorkload{
		subs:     make([]string, subs),
		filters:  make([][]string, subs),
		docs:     make([][]string, docs),
		expCount: make([]int, docs),
		expHash:  make([]uint64, docs),
	}
	posting := make(map[string][]int, wireVocab)
	for i := 0; i < subs; i++ {
		wl.subs[i] = fmt.Sprintf("sub-%05d", i)
		wl.filters[i] = distinct(2, zipfDraw)
		for _, t := range wl.filters[i] {
			posting[t] = append(posting[t], i)
		}
	}
	stamp := make([]int, subs)
	for d := 0; d < docs; d++ {
		wl.docs[d] = distinct(8, uniformDraw)
		for _, t := range wl.docs[d] {
			for _, s := range posting[t] {
				if stamp[s] == d+1 {
					continue
				}
				stamp[s] = d + 1
				wl.expCount[d]++
				wl.expHash[d] += subNameHash(wl.subs[s])
			}
		}
		wl.expTotal += int64(wl.expCount[d])
	}
	return wl
}

// wireDaemon is one spawned moved process.
type wireDaemon struct {
	id        ring.NodeID
	addr      string
	debugAddr string
	subAddr   string
	cmd       *exec.Cmd
	logPath   string
}

// pickLoopbackAddrs reserves n distinct loopback ports, holding every
// listener open until all are picked — closing them one at a time would
// let the kernel hand a just-released port to a later pick, assigning two
// daemons the same address.
func pickLoopbackAddrs(n int) ([]string, error) {
	addrs := make([]string, 0, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			_ = ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, nil
}

// buildMoved compiles cmd/moved into dir (the harness runs from the repo
// root, as `make bench-wire` does).
func buildMoved(dir string) (string, error) {
	bin := filepath.Join(dir, "moved")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/moved")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("build moved: %v\n%s", err, out)
	}
	return bin, nil
}

// spawnWireCluster launches one moved per node on pre-picked loopback
// ports, each with a debug server (for /metrics scraping) and a subscriber
// session listener, and the requested coalescing configuration.
func spawnWireCluster(dir, movedBin string, nodes int, coalesce bool, flushDelay time.Duration) ([]*wireDaemon, error) {
	daemons := make([]*wireDaemon, nodes)
	addrs, err := pickLoopbackAddrs(3 * nodes)
	if err != nil {
		return nil, err
	}
	label := "on"
	if !coalesce {
		label = "off"
	}
	var peerParts []string
	for i := 0; i < nodes; i++ {
		id := ring.NodeID(fmt.Sprintf("n%d", i))
		daemons[i] = &wireDaemon{id: id, addr: addrs[3*i], debugAddr: addrs[3*i+1], subAddr: addrs[3*i+2]}
		peerParts = append(peerParts, fmt.Sprintf("%s=%s", id, daemons[i].addr))
	}
	peers := strings.Join(peerParts, ",")
	for _, d := range daemons {
		args := []string{
			"-id", string(d.id),
			"-listen", d.addr,
			"-peers", peers,
			"-debug.addr", d.debugAddr,
			"-subscribe.addr", d.subAddr,
			"-subscribe.queue", "8192",
			// Identical in both configs: coalesce subscriber-session event
			// writes so the session fan-out (delivery.* wire, not under
			// test) doesn't drown the RPC syscall effect on small machines.
			"-subscribe.flush-delay", "1ms",
			"-rpc.flush-delay", flushDelay.String(),
		}
		if !coalesce {
			args = append(args, "-rpc.no-coalesce")
		}
		d.logPath = filepath.Join(dir, fmt.Sprintf("%s-%s.log", d.id, label))
		logF, err := os.Create(d.logPath)
		if err != nil {
			return daemons, err
		}
		d.cmd = exec.Command(movedBin, args...)
		d.cmd.Stdout = logF
		d.cmd.Stderr = logF
		if err := d.cmd.Start(); err != nil {
			logF.Close()
			return daemons, fmt.Errorf("start %s: %w", d.id, err)
		}
	}
	return daemons, nil
}

func stopWireCluster(daemons []*wireDaemon) {
	for _, d := range daemons {
		if d == nil || d.cmd == nil || d.cmd.Process == nil {
			continue
		}
		_ = d.cmd.Process.Signal(syscall.SIGTERM)
	}
	for _, d := range daemons {
		if d == nil || d.cmd == nil || d.cmd.Process == nil {
			continue
		}
		done := make(chan struct{})
		go func(d *wireDaemon) {
			_ = d.cmd.Wait()
			close(done)
		}(d)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			_ = d.cmd.Process.Kill()
			<-done
		}
	}
}

// waitWireReady polls every daemon's /healthz, then round-trips a stats
// RPC to each through the client transport — readiness of the actual wire
// path, not just the debug surface.
func waitWireReady(client *transport.TCPNode, daemons []*wireDaemon) error {
	deadline := time.Now().Add(90 * time.Second)
	for _, d := range daemons {
		for {
			resp, err := http.Get("http://" + d.debugAddr + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				tail, _ := os.ReadFile(d.logPath)
				if len(tail) > 512 {
					tail = tail[len(tail)-512:]
				}
				return fmt.Errorf("daemon %s never became healthy; log tail:\n%s", d.id, tail)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	for _, d := range daemons {
		for {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_, err := client.Send(ctx, d.id, node.EncodeStatsPull())
			cancel()
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("stats RPC to %s never succeeded: %v", d.id, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	return nil
}

// scrapeWireCounters sums the transport.tcp flush counters across the
// client's in-process registry and every daemon's /metrics endpoint.
func scrapeWireCounters(reg *metrics.Registry, daemons []*wireDaemon) (frames, syscalls int64, err error) {
	frames = reg.Counter("transport.tcp.flush.frames").Value()
	syscalls = reg.Counter("transport.tcp.flush.syscalls").Value()
	for _, d := range daemons {
		resp, err := http.Get("http://" + d.debugAddr + "/metrics")
		if err != nil {
			return 0, 0, fmt.Errorf("scrape %s: %w", d.id, err)
		}
		var dump metrics.Dump
		derr := json.NewDecoder(resp.Body).Decode(&dump)
		resp.Body.Close()
		if derr != nil {
			return 0, 0, fmt.Errorf("scrape %s: %w", d.id, derr)
		}
		frames += dump.Counters["transport.tcp.flush.frames"]
		syscalls += dump.Counters["transport.tcp.flush.syscalls"]
	}
	return frames, syscalls, nil
}

// wireSessionState accumulates the live-session fan-out, indexed by doc
// slot (DocID-1), mirroring the delivery bench's oracle accounting.
type wireSessionState struct {
	count []atomic.Int64
	hash  []atomic.Uint64
	total atomic.Int64
}

// attachWireSessions opens one real TCP delivery session per subscriber on
// its owner node and streams+acks events into st. Returns a close func.
func attachWireSessions(r *ring.Ring, wl *wireWorkload, subAddrOf map[ring.NodeID]string, st *wireSessionState) (func(), error) {
	clients := make([]*delivery.Client, 0, len(wl.subs))
	var wg sync.WaitGroup
	closeAll := func() {
		for _, cl := range clients {
			_ = cl.Close()
		}
		wg.Wait()
	}
	for _, sub := range wl.subs {
		owner, err := r.HomeNode("subscriber/" + sub)
		if err != nil {
			closeAll()
			return nil, err
		}
		cl, err := delivery.Dial(subAddrOf[owner], sub, 0)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("session dial %s on %s: %w", sub, owner, err)
		}
		clients = append(clients, cl)
		wg.Add(1)
		go func(cl *delivery.Client, subHash uint64) {
			defer wg.Done()
			for {
				msg, err := cl.Recv()
				if err != nil || msg.Bye != "" {
					return
				}
				for _, ev := range msg.Events {
					slot := int(ev.DocID) - 1
					if slot >= 0 && slot < len(st.count) {
						st.count[slot].Add(1)
						st.hash[slot].Add(subHash)
						st.total.Add(1)
					}
				}
				if len(msg.Events) > 0 {
					if err := cl.Ack(msg.Events[len(msg.Events)-1].Seq); err != nil {
						return
					}
				}
			}
		}(cl, subNameHash(sub))
	}
	return closeAll, nil
}

// publishWireDoc drives one document through the full pipeline over real
// sockets: one multi-term publish RPC per home node, match-set merge and
// oracle check, then one deliver-batch RPC per session-owner node.
func publishWireDoc(ctx context.Context, client *transport.TCPNode, r *ring.Ring, wl *wireWorkload, docIdx int) error {
	terms := wl.docs[docIdx]
	doc := model.Document{ID: uint64(docIdx + 1), Terms: terms}
	byHome := make(map[ring.NodeID][]string)
	var homes []ring.NodeID
	for _, t := range terms {
		home, err := r.HomeNode(t)
		if err != nil {
			return err
		}
		if _, ok := byHome[home]; !ok {
			homes = append(homes, home)
		}
		byHome[home] = append(byHome[home], t)
	}
	seen := make(map[model.FilterID]string)
	for _, home := range homes {
		raw, err := client.Send(ctx, home, node.EncodePublishMultiHome(node.PublishMultiReq{Doc: doc, Terms: byHome[home]}))
		if err != nil {
			return fmt.Errorf("publish doc %d to %s: %w", doc.ID, home, err)
		}
		resp, err := node.DecodeMatchResp(raw)
		if err != nil {
			return err
		}
		for _, m := range resp.Matches {
			seen[m.Filter] = m.Subscriber
		}
	}

	var gotHash uint64
	matches := make([]node.Match, 0, len(seen))
	for id, sub := range seen {
		gotHash += subNameHash(sub)
		matches = append(matches, node.Match{Filter: id, Subscriber: sub})
	}
	if len(seen) != wl.expCount[docIdx] || gotHash != wl.expHash[docIdx] {
		return fmt.Errorf("doc %d match oracle violation: got %d subs (hash %x), want %d (hash %x)",
			doc.ID, len(seen), gotHash, wl.expCount[docIdx], wl.expHash[docIdx])
	}

	byOwner := make(map[ring.NodeID][]delivery.Notification)
	for _, nt := range node.GroupMatchesBySub(matches) {
		owner, err := r.HomeNode("subscriber/" + nt.Sub)
		if err != nil {
			return err
		}
		byOwner[owner] = append(byOwner[owner], nt)
	}
	for owner, notifs := range byOwner {
		payload := node.EncodeDeliverBatch(&delivery.Batch{DocID: doc.ID, Terms: doc.Terms, Notifs: notifs})
		if _, err := client.Send(ctx, owner, payload); err != nil {
			return fmt.Errorf("deliver batch doc %d to %s: %w", doc.ID, owner, err)
		}
	}
	return nil
}

// wireCluster is one live coalescing configuration under measurement: its
// spawned daemons, the bench client wired to them, the attached sessions,
// and the best-round report so far.
type wireCluster struct {
	coalesce bool
	label    string
	daemons  []*wireDaemon
	client   *transport.TCPNode
	reg      *metrics.Registry
	r        *ring.Ring
	st       *wireSessionState
	closers  []func()

	rounds int
	best   bool
	rep    wireConfigReport
}

func (c *wireCluster) close() {
	for i := len(c.closers) - 1; i >= 0; i-- {
		c.closers[i]()
	}
	c.closers = nil
}

// setupWireCluster brings one configuration to a warm steady state: spawn
// the daemons, wait for wire readiness, register every filter, attach
// every subscriber session, and push warm-up traffic through the full
// pipeline so all stripes are dialed and all buffer pools hot.
func setupWireCluster(dir, movedBin string, opts wireOpts, wl *wireWorkload, coalesce bool) (*wireCluster, error) {
	c := &wireCluster{coalesce: coalesce, label: "coalescing on", rep: wireConfigReport{Coalesce: coalesce}}
	if !coalesce {
		c.label = "coalescing off"
	}
	fmt.Printf("wire: spawning %d moved daemons (%s)...\n", opts.Nodes, c.label)
	daemons, err := spawnWireCluster(dir, movedBin, opts.Nodes, coalesce, opts.FlushDelay)
	c.daemons = daemons
	c.closers = append(c.closers, func() { stopWireCluster(daemons) })
	if err != nil {
		c.close()
		return nil, err
	}

	peers := make(map[ring.NodeID]string, len(daemons))
	subAddrOf := make(map[ring.NodeID]string, len(daemons))
	c.r = ring.New(ring.Config{})
	for _, d := range daemons {
		peers[d.id] = d.addr
		subAddrOf[d.id] = d.subAddr
		if err := c.r.Add(ring.Member{ID: d.id, Rack: "rack-0"}); err != nil {
			c.close()
			return nil, err
		}
	}
	c.reg = metrics.NewRegistry()
	c.client, err = transport.NewTCPOpts("bench-client", "127.0.0.1:0",
		func(context.Context, ring.NodeID, []byte) ([]byte, error) {
			return nil, fmt.Errorf("bench client serves no requests")
		},
		transport.StaticResolver(peers),
		transport.TCPOptions{NoCoalesce: !coalesce, FlushDelay: opts.FlushDelay, DialBackoff: 50 * time.Millisecond, Metrics: c.reg})
	if err != nil {
		c.close()
		return nil, err
	}
	client := c.client
	c.closers = append(c.closers, func() { _ = client.Close() })
	if err := waitWireReady(c.client, daemons); err != nil {
		c.close()
		return nil, err
	}

	// Register one filter per subscriber on the home node of each term.
	fmt.Printf("wire: registering %d filters (%s)...\n", len(wl.subs), c.label)
	regCtx, regCancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer regCancel()
	var regErr atomic.Value
	var wg sync.WaitGroup
	idxCh := make(chan int, len(wl.subs))
	for i := range wl.subs {
		idxCh <- i
	}
	close(idxCh)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				f := model.Filter{ID: model.FilterID(i + 1), Subscriber: wl.subs[i], Terms: wl.filters[i], Mode: model.MatchAny}
				byHome := make(map[ring.NodeID][]string)
				for _, t := range f.Terms {
					home, err := c.r.HomeNode(t)
					if err != nil {
						regErr.Store(err)
						return
					}
					byHome[home] = append(byHome[home], t)
				}
				for home, postingTerms := range byHome {
					if _, err := c.client.Send(regCtx, home, node.EncodeRegister(node.RegisterReq{Filter: f, PostingTerms: postingTerms})); err != nil {
						regErr.Store(fmt.Errorf("register %s on %s: %w", f.Subscriber, home, err))
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if err, _ := regErr.Load().(error); err != nil {
		c.close()
		return nil, err
	}

	// Attach every subscriber as a live TCP delivery session.
	fmt.Printf("wire: attaching %d live sessions (%s)...\n", len(wl.subs), c.label)
	c.st = &wireSessionState{count: make([]atomic.Int64, opts.Docs), hash: make([]atomic.Uint64, opts.Docs)}
	closeSessions, err := attachWireSessions(c.r, wl, subAddrOf, c.st)
	if err != nil {
		c.close()
		return nil, err
	}
	c.closers = append(c.closers, closeSessions)

	// Warm-up: publish no-match documents (terms outside the vocabulary)
	// through the full pipeline so the measured rounds see the steady
	// state, not connection establishment or cold pools.
	warmCtx, warmCancel := context.WithTimeout(context.Background(), time.Minute)
	defer warmCancel()
	var warmErr atomic.Value
	var warmNext atomic.Int64
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(warmNext.Add(1)) - 1
				if i >= 64 || warmErr.Load() != nil {
					return
				}
				doc := model.Document{ID: uint64(opts.Docs + i + 1), Terms: []string{fmt.Sprintf("warm-%d-a", i), fmt.Sprintf("warm-%d-b", i)}}
				for _, t := range doc.Terms {
					home, err := c.r.HomeNode(t)
					if err != nil {
						warmErr.Store(err)
						return
					}
					if _, err := c.client.Send(warmCtx, home, node.EncodePublishMultiHome(node.PublishMultiReq{Doc: doc, Terms: []string{t}})); err != nil {
						warmErr.Store(fmt.Errorf("warm-up publish: %w", err))
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if err, _ := warmErr.Load().(error); err != nil {
		c.close()
		return nil, err
	}
	return c, nil
}

// runRound publishes the full document set once through this cluster,
// waits for the oracle fan-out to drain to the attached sessions, and
// keeps the round's measurements if they beat the best round so far.
// Rounds republish the same documents, so sessions see the fan-out once
// per round and the drain barrier and oracle scale with the round count.
func (c *wireCluster) runRound(opts wireOpts, wl *wireWorkload) error {
	c.rounds++
	startFrames, startSyscalls, err := scrapeWireCounters(c.reg, c.daemons)
	if err != nil {
		return err
	}
	fmt.Printf("wire: publishing %d docs with %d workers (%s, round %d/%d)...\n", opts.Docs, opts.Concurrency, c.label, c.rounds, wireRounds)
	pubCtx, pubCancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer pubCancel()
	latencies := make([]time.Duration, opts.Docs)
	var wg sync.WaitGroup
	var pubErr atomic.Value
	var next atomic.Int64
	start := time.Now()
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= opts.Docs || pubErr.Load() != nil {
					return
				}
				t0 := time.Now()
				if err := publishWireDoc(pubCtx, c.client, c.r, wl, i); err != nil {
					pubErr.Store(err)
					pubCancel()
					return
				}
				latencies[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, _ := pubErr.Load().(error); err != nil {
		return err
	}

	// Drain: every expected event must reach a live session over TCP
	// before this round's syscall counters are read.
	want := int64(c.rounds) * wl.expTotal
	drainDeadline := time.Now().Add(60 * time.Second)
	for c.st.total.Load() < want {
		if time.Now().After(drainDeadline) {
			return fmt.Errorf("delivery never drained: %d/%d events", c.st.total.Load(), want)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for d := 0; d < opts.Docs; d++ {
		wantCount, wantHash := int64(c.rounds)*int64(wl.expCount[d]), uint64(c.rounds)*wl.expHash[d]
		if c.st.count[d].Load() != wantCount || c.st.hash[d].Load() != wantHash {
			return fmt.Errorf("doc %d delivery oracle violation: %d events (hash %x), want %d (hash %x)",
				d+1, c.st.count[d].Load(), c.st.hash[d].Load(), wantCount, wantHash)
		}
	}

	endFrames, endSyscalls, err := scrapeWireCounters(c.reg, c.daemons)
	if err != nil {
		return err
	}
	docsPerSec := float64(opts.Docs) / elapsed.Seconds()
	if c.best && docsPerSec <= c.rep.DocsPerSec {
		return nil
	}
	c.best = true
	c.rep.DocsPerSec = docsPerSec
	c.rep.FlushFrames = endFrames - startFrames
	c.rep.FlushSyscalls = endSyscalls - startSyscalls
	if c.rep.FlushSyscalls > 0 {
		c.rep.FramesPerSyscall = float64(c.rep.FlushFrames) / float64(c.rep.FlushSyscalls)
		c.rep.RPCSyscallsPerDoc = float64(c.rep.FlushSyscalls) / float64(opts.Docs)
	}
	c.rep.DeliveredEvents = wl.expTotal
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	c.rep.PublishP50MS = float64(sorted[len(sorted)/2].Microseconds()) / 1000
	c.rep.PublishP99MS = float64(sorted[len(sorted)*99/100].Microseconds()) / 1000
	return nil
}

func (c *wireCluster) report() wireConfigReport {
	fmt.Printf("wire: %s: %.1f docs/sec, publish p50 %.2fms p99 %.2fms, %.2f frames/syscall, %.1f RPC syscalls/doc, %d events/round delivered\n",
		c.label, c.rep.DocsPerSec, c.rep.PublishP50MS, c.rep.PublishP99MS, c.rep.FramesPerSyscall, c.rep.RPCSyscallsPerDoc, c.rep.DeliveredEvents)
	return c.rep
}


func checkWireBaseline(path string, rep wireReport) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("wire: baseline %s not found, skipping regression check\n", path)
			return nil
		}
		return fmt.Errorf("read baseline: %w", err)
	}
	var base wireReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	if base.Nodes != rep.Nodes || base.Docs != rep.Docs || base.Subscribers != rep.Subscribers {
		fmt.Printf("wire: baseline %s is a %d-node/%d-sub/%d-doc profile (this run: %d/%d/%d), skipping regression check\n",
			path, base.Nodes, base.Subscribers, base.Docs, rep.Nodes, rep.Subscribers, rep.Docs)
		return nil
	}
	if base.Coalesced.DocsPerSec > 0 {
		floor := base.Coalesced.DocsPerSec * (1 - wireTolerance)
		if rep.Coalesced.DocsPerSec < floor {
			return fmt.Errorf("docs_per_sec regression: %.1f vs baseline %.1f (budget -%d%%)",
				rep.Coalesced.DocsPerSec, base.Coalesced.DocsPerSec, int(wireTolerance*100))
		}
		fmt.Printf("wire: %.1f docs/sec within budget of baseline %.1f\n", rep.Coalesced.DocsPerSec, base.Coalesced.DocsPerSec)
	}
	return nil
}

// runWireFig produces BENCH_wire.json: the coalescing-on and -off
// configurations measured on identical multi-process loopback clusters,
// gated on frames/syscall and relative docs/sec. Both clusters stay alive
// for the whole measurement and the rounds interleave off/on, so ambient
// host noise (scheduler, thermal, background load) lands on both
// configurations rather than biasing whichever ran second.
// With opts.Peers set the harness instead drives an existing (possibly
// multi-host) cluster: publish-only, client-side wire metrics, no gates.
func runWireFig(outPath, baselinePath string, opts wireOpts, seed int64) error {
	if opts.Nodes < 2 && opts.Peers == "" {
		return fmt.Errorf("wire: need at least 2 nodes")
	}
	if opts.Subs < 1 || opts.Docs < 1 {
		return fmt.Errorf("wire: need at least 1 subscriber and 1 document")
	}
	if opts.Concurrency < 1 {
		opts.Concurrency = 1
	}
	if opts.Peers != "" {
		return runWireExisting(opts, seed)
	}

	dir, err := os.MkdirTemp("", "movewire")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	movedBin := opts.MovedBin
	if movedBin == "" {
		fmt.Printf("wire: building moved...\n")
		movedBin, err = buildMoved(dir)
		if err != nil {
			return err
		}
	}
	wl := buildWireWorkload(opts.Subs, opts.Docs, seed)
	fmt.Printf("wire: workload: %d subscribers, %d docs, %.1f expected deliveries/doc\n",
		opts.Subs, opts.Docs, float64(wl.expTotal)/float64(opts.Docs))

	rep := wireReport{
		GeneratedBy: "movebench -fig wire",
		Nodes:       opts.Nodes,
		Subscribers: opts.Subs,
		Docs:        opts.Docs,
		Concurrency: opts.Concurrency,
		Seed:        seed,
		FlushDelayMS: float64(opts.FlushDelay.Microseconds()) / 1000,
	}
	off, err := setupWireCluster(dir, movedBin, opts, wl, false)
	if err != nil {
		return fmt.Errorf("coalescing-off setup: %w", err)
	}
	defer off.close()
	on, err := setupWireCluster(dir, movedBin, opts, wl, true)
	if err != nil {
		return fmt.Errorf("coalescing-on setup: %w", err)
	}
	defer on.close()
	for round := 1; round <= wireRounds; round++ {
		if err := off.runRound(opts, wl); err != nil {
			return fmt.Errorf("coalescing-off round %d: %w", round, err)
		}
		if err := on.runRound(opts, wl); err != nil {
			return fmt.Errorf("coalescing-on round %d: %w", round, err)
		}
	}
	rep.Uncoalesced = off.report()
	rep.Coalesced = on.report()
	if rep.Uncoalesced.DocsPerSec > 0 {
		rep.SpeedupDocsPerSec = rep.Coalesced.DocsPerSec / rep.Uncoalesced.DocsPerSec
	}
	fmt.Printf("wire: coalescing speedup: %.2fx docs/sec (%.1f vs %.1f)\n",
		rep.SpeedupDocsPerSec, rep.Coalesced.DocsPerSec, rep.Uncoalesced.DocsPerSec)

	if rep.Coalesced.FramesPerSyscall <= wireFPSFloor {
		return fmt.Errorf("frames_per_syscall gate failed: %.2f <= %.1f under concurrent batched publish",
			rep.Coalesced.FramesPerSyscall, wireFPSFloor)
	}
	if rep.SpeedupDocsPerSec < wireSpeedupFloor {
		return fmt.Errorf("speedup gate failed: coalescing-on %.1f docs/sec is only %.2fx coalescing-off %.1f (want >= %.2fx)",
			rep.Coalesced.DocsPerSec, rep.SpeedupDocsPerSec, rep.Uncoalesced.DocsPerSec, wireSpeedupFloor)
	}
	if baselinePath != "" {
		if err := checkWireBaseline(baselinePath, rep); err != nil {
			return err
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wire: wrote %s\n", outPath)
	return nil
}

// runWireExisting drives an already-running cluster (-wire-peers), e.g. a
// multi-host deployment: registers the workload, publishes through the
// client's real TCP transport, and prints client-side wire metrics. No
// sessions are attached (their addresses are not in the peer map) and no
// gates apply — deliveries land in mailboxes on the owner nodes.
func runWireExisting(opts wireOpts, seed int64) error {
	peers, err := transport.ParsePeers(opts.Peers)
	if err != nil {
		return err
	}
	if len(peers) == 0 {
		return fmt.Errorf("wire: -wire-peers is empty")
	}
	r := ring.New(ring.Config{})
	for pid := range peers {
		if err := r.Add(ring.Member{ID: pid, Rack: "rack-0"}); err != nil {
			return err
		}
	}
	clientReg := metrics.NewRegistry()
	client, err := transport.NewTCPOpts("bench-client", ":0",
		func(context.Context, ring.NodeID, []byte) ([]byte, error) {
			return nil, fmt.Errorf("bench client serves no requests")
		},
		transport.StaticResolver(peers), transport.TCPOptions{FlushDelay: opts.FlushDelay, Metrics: clientReg})
	if err != nil {
		return err
	}
	defer client.Close()

	wl := buildWireWorkload(opts.Subs, opts.Docs, seed)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	for i := range wl.subs {
		f := model.Filter{ID: model.FilterID(i + 1), Subscriber: wl.subs[i], Terms: wl.filters[i], Mode: model.MatchAny}
		byHome := make(map[ring.NodeID][]string)
		for _, t := range f.Terms {
			home, err := r.HomeNode(t)
			if err != nil {
				return err
			}
			byHome[home] = append(byHome[home], t)
		}
		for home, postingTerms := range byHome {
			if _, err := client.Send(ctx, home, node.EncodeRegister(node.RegisterReq{Filter: f, PostingTerms: postingTerms})); err != nil {
				return fmt.Errorf("register %s on %s: %w", f.Subscriber, home, err)
			}
		}
	}

	var wg sync.WaitGroup
	var pubErr atomic.Value
	var next atomic.Int64
	latencies := make([]time.Duration, opts.Docs)
	start := time.Now()
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= opts.Docs || pubErr.Load() != nil {
					return
				}
				t0 := time.Now()
				if err := publishWireDoc(ctx, client, r, wl, i); err != nil {
					pubErr.Store(err)
					return
				}
				latencies[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, _ := pubErr.Load().(error); err != nil {
		return err
	}
	frames := clientReg.Counter("transport.tcp.flush.frames").Value()
	syscalls := clientReg.Counter("transport.tcp.flush.syscalls").Value()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	fps := 0.0
	if syscalls > 0 {
		fps = float64(frames) / float64(syscalls)
	}
	fmt.Printf("wire (existing cluster): %.1f docs/sec, publish p50 %.2fms p99 %.2fms, client-side %.2f frames/syscall\n",
		float64(opts.Docs)/elapsed.Seconds(),
		float64(latencies[len(latencies)/2].Microseconds())/1000,
		float64(latencies[len(latencies)*99/100].Microseconds())/1000,
		fps)
	return nil
}
