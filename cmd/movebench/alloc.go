package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"github.com/movesys/move/internal/cluster"
	"github.com/movesys/move/internal/dataset"
	"github.com/movesys/move/internal/index"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/node"
	"github.com/movesys/move/internal/store"
)

// allocStat is one hot path's heap cost, averaged over the measured
// iterations via runtime.ReadMemStats deltas (Mallocs / TotalAlloc).
type allocStat struct {
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// allocReport is the JSON document `movebench -fig alloc` writes: heap
// allocation cost per operation on the match and publish hot paths.
// Checked into the repo as BENCH_alloc.json so PRs carry an allocation
// baseline the same way BENCH_publish.json carries a latency baseline.
type allocReport struct {
	GeneratedBy string `json:"generated_by"`
	Nodes       int    `json:"nodes"`
	Filters     int    `json:"filters"`
	Docs        int    `json:"docs"`
	Seed        int64  `json:"seed"`

	// MatchTerm is the per-call cost of Index.MatchTerm on a warm index
	// (hot posting list, repeated document — the home-node steady state).
	// Includes the matched-results slice, so a fully matching posting
	// list is never literally zero.
	MatchTerm allocStat `json:"match_term"`
	// Publish is the per-document cost of Cluster.Publish end to end
	// (entry → home fan-out → column match RPCs → reply), zero RPC
	// latency so heap cost is the signal.
	Publish allocStat `json:"publish"`
	// PublishBatch is the per-document cost through the coalescing batch
	// pipeline (Cluster.PublishBatch over the same documents).
	PublishBatch allocStat `json:"publish_batch"`

	// OracleDocs is the number of measured documents whose match set was
	// verified byte-identical against a brute-force oracle.
	OracleDocs int `json:"oracle_docs"`
}

// allocTolerance is the regression budget enforced against -baseline: a
// new allocs/op or B/op more than 10% above the checked-in baseline
// fails the run (and CI), mirroring the bench-publish p95 guard.
const allocTolerance = 0.10

// allocSlack absorbs measurement noise on small absolute numbers: a
// stat must exceed the baseline by both 10% and this many allocs (or
// 64× this many bytes) to count as a regression.
const allocSlack = 2.0

// measureAllocs runs fn iters times and returns the mean heap cost per
// iteration. A GC cycle before the first ReadMemStats keeps leftover
// warmup garbage out of the window; allocations by goroutines spawned
// from fn (fan-out RPCs, batch pumpers) are counted — they are part of
// the path being priced.
func measureAllocs(iters int, fn func(i int) error) (allocStat, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		if err := fn(i); err != nil {
			return allocStat{}, err
		}
	}
	runtime.ReadMemStats(&after)
	return allocStat{
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
	}, nil
}

// measureMatchTermAllocs prices the innermost hot path directly: one
// posting-list scan against a warm in-memory index, no RPC layer.
func measureMatchTermAllocs(filters int, seed int64) (allocStat, error) {
	st, err := store.Open("", store.Options{})
	if err != nil {
		return allocStat{}, err
	}
	ix, err := index.New(st)
	if err != nil {
		return allocStat{}, err
	}
	const hot = "hot"
	for i := 0; i < filters; i++ {
		f := model.Filter{
			ID:         model.FilterID(i + 1),
			Subscriber: fmt.Sprintf("alloc-sub-%d", i),
			Terms:      model.SortTerms([]string{hot, fmt.Sprintf("term-%04d", i)}),
			Mode:       model.MatchAny,
		}
		if err := ix.Register(f, []string{hot}); err != nil {
			return allocStat{}, err
		}
	}
	terms := []string{hot}
	for i := 0; i < 23; i++ {
		terms = append(terms, fmt.Sprintf("doc-term-%02d", i))
	}
	doc := model.Document{ID: 1, Terms: model.SortTerms(terms)}
	ix.ObserveDocument(&doc)
	// Warm: first call may fault in lazy state (document view, shard
	// snapshots) that steady-state calls share.
	if _, _, err := ix.MatchTerm(&doc, hot); err != nil {
		return allocStat{}, err
	}
	return measureAllocs(2000, func(int) error {
		_, _, err := ix.MatchTerm(&doc, hot)
		return err
	})
}

// oracleFilter is the brute-force oracle's record of one registered
// filter: match-any semantics over its own copy of the term list.
type oracleFilter struct {
	id  model.FilterID
	sub string
	set map[string]struct{}
}

// oracleMatches computes the expected match set for a document by
// scanning every registered filter — no index, no routing, no dedup
// subtleties — and returns it in canonical encoded form.
func oracleMatches(filters []oracleFilter, docTerms []string) string {
	var exp []node.Match
	for _, f := range filters {
		for _, t := range docTerms {
			if _, ok := f.set[t]; ok {
				exp = append(exp, node.Match{Filter: f.id, Subscriber: f.sub})
				break
			}
		}
	}
	return canonicalMatches(exp)
}

// canonicalMatches renders a match set as a canonical byte string so
// cluster results and oracle results can be compared byte-identically
// regardless of arrival order.
func canonicalMatches(ms []node.Match) string {
	keys := make([]string, len(ms))
	for i, m := range ms {
		keys[i] = fmt.Sprintf("%d:%s", m.Filter, m.Subscriber)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// checkAllocBaseline compares a fresh report against the checked-in
// baseline, failing on a >allocTolerance regression in any tracked
// stat. A missing baseline file is not an error — first runs have
// nothing to compare.
func checkAllocBaseline(path string, rep allocReport) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("alloc: baseline %s not found, skipping regression check\n", path)
			return nil
		}
		return fmt.Errorf("read baseline: %w", err)
	}
	var base allocReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	checks := []struct {
		name      string
		base, got allocStat
	}{
		{"match_term", base.MatchTerm, rep.MatchTerm},
		{"publish", base.Publish, rep.Publish},
		{"publish_batch", base.PublishBatch, rep.PublishBatch},
	}
	for _, c := range checks {
		if c.base.AllocsPerOp <= 0 && c.base.BytesPerOp <= 0 {
			continue
		}
		allocLimit := c.base.AllocsPerOp*(1+allocTolerance) + allocSlack
		byteLimit := c.base.BytesPerOp*(1+allocTolerance) + 64*allocSlack
		if c.got.AllocsPerOp > allocLimit {
			return fmt.Errorf("%s allocs/op regression: %.1f vs baseline %.1f (budget +%d%%)",
				c.name, c.got.AllocsPerOp, c.base.AllocsPerOp, int(allocTolerance*100))
		}
		if c.got.BytesPerOp > byteLimit {
			return fmt.Errorf("%s B/op regression: %.0f vs baseline %.0f (budget +%d%%)",
				c.name, c.got.BytesPerOp, c.base.BytesPerOp, int(allocTolerance*100))
		}
		fmt.Printf("alloc: %s %.1f allocs/op %.0f B/op within +%d%% of baseline (%.1f allocs/op %.0f B/op)\n",
			c.name, c.got.AllocsPerOp, c.got.BytesPerOp, int(allocTolerance*100),
			c.base.AllocsPerOp, c.base.BytesPerOp)
	}
	return nil
}

// runAllocFig measures heap allocation cost per operation on the match
// and publish hot paths and writes the report to outPath. Every
// measured document's match set is verified byte-identical against a
// brute-force oracle, so an allocation "optimization" that corrupts
// matching fails loudly here. RPC latency is zero: the in-memory
// fabric prices heap work, not sleeps.
func runAllocFig(outPath, baselinePath string, nodes, filters, docs int, seed int64) error {
	mt, err := measureMatchTermAllocs(256, seed)
	if err != nil {
		return fmt.Errorf("match_term: %w", err)
	}

	c, err := cluster.New(cluster.Config{
		Scheme: cluster.SchemeMove,
		Nodes:  nodes,
		Seed:   seed,
	})
	if err != nil {
		return err
	}
	fg, err := dataset.NewFilterGen(dataset.FilterConfig{DistinctTerms: 20_000, Seed: seed})
	if err != nil {
		return err
	}
	dg, err := dataset.NewDocGen(dataset.CorpusConfig{
		Kind: dataset.CorpusWT, DistinctTerms: 20_000, Seed: seed + 1,
	})
	if err != nil {
		return err
	}

	ctx := context.Background()
	oracle := make([]oracleFilter, 0, filters)
	for i := 0; i < filters; i++ {
		terms := fg.Next()
		sub := fmt.Sprintf("alloc-sub-%d", i)
		id, err := c.Register(ctx, sub, terms, model.MatchAny, 0)
		if err != nil {
			return fmt.Errorf("register filter %d: %w", i, err)
		}
		set := make(map[string]struct{}, len(terms))
		for _, t := range terms {
			set[t] = struct{}{}
		}
		oracle = append(oracle, oracleFilter{id: id, sub: sub, set: set})
	}

	docTerms := make([][]string, docs)
	for i := range docTerms {
		docTerms[i] = dg.Next()
	}

	// Warm the cluster (grid caches, histograms, shard maps, pools)
	// outside the measurement window.
	warm := docs/5 + 1
	for i := 0; i < warm; i++ {
		if _, err := c.Publish(ctx, dg.Next()); err != nil {
			return fmt.Errorf("warmup publish %d: %w", i, err)
		}
	}

	// Single-document phase. Results land in a preallocated slice so the
	// oracle check stays outside the measured window.
	results := make([]cluster.PublishResult, docs)
	pub, err := measureAllocs(docs, func(i int) error {
		res, err := c.Publish(ctx, docTerms[i])
		if err != nil {
			return fmt.Errorf("publish doc %d: %w", i, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return err
	}
	for i, res := range results {
		if !res.Complete {
			return fmt.Errorf("publish doc %d: incomplete result on healthy cluster", i)
		}
		got, want := canonicalMatches(res.Matches), oracleMatches(oracle, docTerms[i])
		if got != want {
			return fmt.Errorf("publish doc %d: matches diverge from brute-force oracle\n got: %q\nwant: %q", i, got, want)
		}
	}

	// Batch phase: the same documents through the coalescing pipeline.
	var batchResults []cluster.PublishResult
	batch, err := measureAllocs(1, func(int) error {
		var err error
		batchResults, err = c.PublishBatch(ctx, docTerms)
		return err
	})
	if err != nil {
		return fmt.Errorf("batch publish: %w", err)
	}
	batch.AllocsPerOp /= float64(docs)
	batch.BytesPerOp /= float64(docs)
	for i, res := range batchResults {
		if !res.Complete {
			return fmt.Errorf("batch doc %d: incomplete result on healthy cluster", i)
		}
		got, want := canonicalMatches(res.Matches), oracleMatches(oracle, docTerms[i])
		if got != want {
			return fmt.Errorf("batch doc %d: matches diverge from brute-force oracle\n got: %q\nwant: %q", i, got, want)
		}
	}

	rep := allocReport{
		GeneratedBy:  "movebench -fig alloc",
		Nodes:        nodes,
		Filters:      filters,
		Docs:         docs,
		Seed:         seed,
		MatchTerm:    mt,
		Publish:      pub,
		PublishBatch: batch,
		OracleDocs:   docs * 2,
	}
	if baselinePath != "" {
		if err := checkAllocBaseline(baselinePath, rep); err != nil {
			return err
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("alloc: match_term %.1f allocs/op %.0f B/op; publish %.1f allocs/op %.0f B/op; batch %.1f allocs/op %.0f B/op (%d docs oracle-verified) -> %s\n",
		rep.MatchTerm.AllocsPerOp, rep.MatchTerm.BytesPerOp,
		rep.Publish.AllocsPerOp, rep.Publish.BytesPerOp,
		rep.PublishBatch.AllocsPerOp, rep.PublishBatch.BytesPerOp,
		rep.OracleDocs, outPath)
	return nil
}
