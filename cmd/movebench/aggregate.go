package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/movesys/move/internal/dataset"
	"github.com/movesys/move/internal/index"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/store"
)

// aggregateReport is the JSON document `movebench -fig aggregate` writes:
// the serving-layer memory cost of the flat per-filter index versus the
// aggregated covering index over the same synthetic Zipf filter set, plus
// the cover-compression accounting and match timing. Checked into the repo
// as BENCH_aggregate.json so PRs carry a compression baseline the same way
// BENCH_alloc.json carries an allocation baseline.
type aggregateReport struct {
	GeneratedBy   string `json:"generated_by"`
	Filters       int    `json:"filters"`
	Catalog       int    `json:"catalog"`
	DistinctTerms int    `json:"distinct_terms"`
	Docs          int    `json:"docs"`
	Seed          int64  `json:"seed"`

	// StoreBytesPerFilter is the durable layer's heap cost per filter —
	// identical content under both engines, measured so the index figures
	// below can exclude it.
	StoreBytesPerFilter float64 `json:"store_bytes_per_filter"`
	// FlatBytesPerFilter / AggBytesPerFilter are the serving-layer heap
	// bytes per registered filter (store cost subtracted out) for the
	// flat and aggregated engines.
	FlatBytesPerFilter float64 `json:"flat_index_bytes_per_filter"`
	AggBytesPerFilter  float64 `json:"agg_index_bytes_per_filter"`
	// Reduction is 1 - agg/flat: the fraction of serving-layer index
	// memory the covering index saves. The acceptance floor is 0.30.
	Reduction float64 `json:"index_bytes_reduction"`

	// Cover-compression accounting, from Index.CoverStats and
	// Index.CoverDetailStats on the aggregated build.
	Covers               int `json:"covers"`
	CoveredFilters       int `json:"covered_filters"`
	StoredEntries        int `json:"stored_entries"`
	LogicalPostings      int `json:"logical_postings"`
	PostingsSaved        int `json:"postings_saved"`
	ExpansionFanoutMilli int `json:"expansion_fanout_milli"`
	PostingTerms         int `json:"posting_terms"`
	LiveBits             int `json:"live_bits"`

	// Match timing over the oracle document set (MatchSIFT per document).
	FlatMatchNsPerDoc float64 `json:"flat_match_ns_per_doc"`
	AggMatchNsPerDoc  float64 `json:"agg_match_ns_per_doc"`

	// OracleDocs is the number of documents whose aggregated match set
	// was verified byte-identical to the flat engine's.
	OracleDocs int `json:"oracle_docs"`
}

// aggregateReductionFloor is the ISSUE acceptance criterion: the covering
// index must shave at least this fraction off the flat serving layer.
const aggregateReductionFloor = 0.30

// aggregateTolerance is the regression budget enforced against -baseline:
// a reduction more than 10% (relative) below the checked-in baseline, or
// an agg bytes/filter more than 10% above it, fails the run (and CI).
const aggregateTolerance = 0.10

// heapInUse settles the heap and returns the live allocation level. Two GC
// cycles let finalizer-freed objects (store column families dropped between
// builds) actually leave the heap before the reading.
func heapInUse() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// aggregateFilterAt builds the i-th synthetic filter over the prepared
// term sets — deterministic, so the store-only, flat, and aggregated
// builds register byte-identical content.
func aggregateFilterAt(i int, terms []string) model.Filter {
	return model.Filter{
		ID:         model.FilterID(i + 1),
		Subscriber: "agg-sub-" + strconv.Itoa(i),
		Terms:      terms,
		Mode:       model.MatchAny,
	}
}

// buildAggregateIndex opens a fresh in-memory store, registers every
// filter through the given engine constructor, and returns the index plus
// the heap delta the build retained.
func buildAggregateIndex(open func(*store.Store) (*index.Index, error), filterTerms [][]string) (*index.Index, int64, error) {
	before := heapInUse()
	st, err := store.Open("", store.Options{})
	if err != nil {
		return nil, 0, err
	}
	ix, err := open(st)
	if err != nil {
		return nil, 0, err
	}
	for i, terms := range filterTerms {
		if err := ix.Register(aggregateFilterAt(i, terms), terms); err != nil {
			return nil, 0, fmt.Errorf("register filter %d: %w", i, err)
		}
	}
	return ix, int64(heapInUse()) - int64(before), nil
}

// buildAggregateStoreOnly writes the same filters and postings straight to
// a store with no index on top — the durable-layer baseline subtracted
// from both engines' totals.
func buildAggregateStoreOnly(filterTerms [][]string) (int64, error) {
	before := heapInUse()
	st, err := store.Open("", store.Options{})
	if err != nil {
		return 0, err
	}
	fs, err := store.NewFilterStore(st)
	if err != nil {
		return 0, err
	}
	ps, err := store.NewPostingStore(st)
	if err != nil {
		return 0, err
	}
	for i, terms := range filterTerms {
		f := aggregateFilterAt(i, terms)
		if err := fs.Put(f); err != nil {
			return 0, err
		}
		for _, t := range terms {
			if err := ps.Add(t, f.ID); err != nil {
				return 0, err
			}
		}
	}
	delta := int64(heapInUse()) - int64(before)
	runtime.KeepAlive(st)
	return delta, nil
}

// aggregateMatchSet renders one document's match set in canonical sorted
// form for byte-identical engine comparison.
func aggregateMatchSet(ix *index.Index, doc *model.Document) (string, error) {
	fs, _, err := ix.MatchSIFT(doc)
	if err != nil {
		return "", err
	}
	ids := make([]int, len(fs))
	for i, f := range fs {
		ids[i] = int(f.ID)
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&b, "%d,", id)
	}
	return b.String(), nil
}

// aggregateMatchRun times MatchSIFT over the document set, returning
// ns/doc.
func aggregateMatchRun(ix *index.Index, docs []*model.Document) (float64, error) {
	start := time.Now()
	for _, d := range docs {
		if _, _, err := ix.MatchSIFT(d); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(len(docs)), nil
}

// checkAggregateBaseline compares a fresh report against the checked-in
// baseline: the memory reduction must not fall more than
// aggregateTolerance (relative) below it, and agg bytes/filter must not
// rise more than aggregateTolerance above it. A missing baseline file is
// not an error — first runs have nothing to compare.
func checkAggregateBaseline(path string, rep aggregateReport) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("aggregate: baseline %s not found, skipping regression check\n", path)
			return nil
		}
		return fmt.Errorf("read baseline: %w", err)
	}
	var base aggregateReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	if base.Reduction > 0 {
		floor := base.Reduction * (1 - aggregateTolerance)
		if rep.Reduction < floor {
			return fmt.Errorf("index memory reduction regression: %.1f%% vs baseline %.1f%% (budget -%d%% relative)",
				rep.Reduction*100, base.Reduction*100, int(aggregateTolerance*100))
		}
		fmt.Printf("aggregate: reduction %.1f%% within -%d%% of baseline (%.1f%%)\n",
			rep.Reduction*100, int(aggregateTolerance*100), base.Reduction*100)
	}
	if base.AggBytesPerFilter > 0 {
		limit := base.AggBytesPerFilter * (1 + aggregateTolerance)
		if rep.AggBytesPerFilter > limit {
			return fmt.Errorf("agg index bytes/filter regression: %.1f vs baseline %.1f (budget +%d%%)",
				rep.AggBytesPerFilter, base.AggBytesPerFilter, int(aggregateTolerance*100))
		}
		fmt.Printf("aggregate: %.1f bytes/filter within +%d%% of baseline (%.1f)\n",
			rep.AggBytesPerFilter, int(aggregateTolerance*100), base.AggBytesPerFilter)
	}
	return nil
}

// runAggregateFig builds the same synthetic Zipf filter set three times —
// store only, flat index, aggregated covering index — and prices each
// build's retained heap. Every document's aggregated match set is verified
// byte-identical to the flat engine's (the in-tree oracle), so a memory
// "optimization" that corrupts matching fails loudly here. Hard-fails when
// the serving-layer reduction drops below the 30% acceptance floor.
func runAggregateFig(outPath, baselinePath string, filters, catalog, distinctTerms, docs int, seed int64) error {
	fg, err := dataset.NewFilterGen(dataset.FilterConfig{DistinctTerms: distinctTerms, Seed: seed})
	if err != nil {
		return err
	}
	dg, err := dataset.NewDocGen(dataset.CorpusConfig{
		Kind: dataset.CorpusWT, DistinctTerms: distinctTerms, Seed: seed + 1,
	})
	if err != nil {
		return err
	}
	// Predicate catalog: real subscription traces are Zipf-skewed at the
	// whole-predicate level too — popular keyword sets are subscribed by
	// many users (the MSN trace's duplicated queries), which is exactly the
	// sharing the covering index exploits. Draw each filter instance from a
	// Zipf-ranked catalog of distinct term sets.
	if catalog > filters {
		catalog = filters
	}
	catalogTerms := make([][]string, catalog)
	for i := range catalogTerms {
		catalogTerms[i] = model.SortTerms(fg.Next())
	}
	rng := rand.New(rand.NewSource(seed + 2))
	pick := rand.NewZipf(rng, 1.2, 1.0, uint64(catalog-1))
	filterTerms := make([][]string, filters)
	for i := range filterTerms {
		filterTerms[i] = catalogTerms[pick.Uint64()]
	}
	docSet := make([]*model.Document, docs)
	for i := range docSet {
		d := &model.Document{ID: uint64(i + 1), Terms: model.SortTerms(dg.Next())}
		d.View()
		docSet[i] = d
	}

	storeBytes, err := buildAggregateStoreOnly(filterTerms)
	if err != nil {
		return fmt.Errorf("store-only build: %w", err)
	}

	flat, flatTotal, err := buildAggregateIndex(index.NewFlat, filterTerms)
	if err != nil {
		return fmt.Errorf("flat build: %w", err)
	}
	oracle := make([]string, docs)
	for i, d := range docSet {
		if oracle[i], err = aggregateMatchSet(flat, d); err != nil {
			return fmt.Errorf("flat match doc %d: %w", i, err)
		}
	}
	flatNs, err := aggregateMatchRun(flat, docSet)
	if err != nil {
		return err
	}
	flat = nil // release the flat engine before the aggregated build prices its heap

	agg, aggTotal, err := buildAggregateIndex(index.New, filterTerms)
	if err != nil {
		return fmt.Errorf("aggregated build: %w", err)
	}
	if !agg.Aggregated() {
		return fmt.Errorf("index.New did not select the aggregated engine")
	}
	for i, d := range docSet {
		got, err := aggregateMatchSet(agg, d)
		if err != nil {
			return fmt.Errorf("agg match doc %d: %w", i, err)
		}
		if got != oracle[i] {
			return fmt.Errorf("doc %d: aggregated match set diverges from flat oracle\n got: %q\nwant: %q", i, got, oracle[i])
		}
	}
	aggNs, err := aggregateMatchRun(agg, docSet)
	if err != nil {
		return err
	}
	cs := agg.CoverStats()
	cd := agg.CoverDetailStats()

	flatIndexBytes := flatTotal - storeBytes
	aggIndexBytes := aggTotal - storeBytes
	if flatIndexBytes <= 0 {
		return fmt.Errorf("flat serving layer measured %d bytes over a %d-byte store; workload too small to price", flatIndexBytes, storeBytes)
	}
	n := float64(filters)
	rep := aggregateReport{
		GeneratedBy:          "movebench -fig aggregate",
		Filters:              filters,
		Catalog:              catalog,
		DistinctTerms:        distinctTerms,
		Docs:                 docs,
		Seed:                 seed,
		StoreBytesPerFilter:  float64(storeBytes) / n,
		FlatBytesPerFilter:   float64(flatIndexBytes) / n,
		AggBytesPerFilter:    float64(aggIndexBytes) / n,
		Reduction:            1 - float64(aggIndexBytes)/float64(flatIndexBytes),
		Covers:               cs.Covers,
		CoveredFilters:       cs.CoveredFilters,
		StoredEntries:        cs.StoredEntries,
		LogicalPostings:      cs.LogicalPostings,
		PostingsSaved:        cs.PostingsSaved,
		ExpansionFanoutMilli: cs.ExpansionFanoutMilli,
		PostingTerms:         cd.Terms,
		LiveBits:             cd.LiveBits,
		FlatMatchNsPerDoc:    flatNs,
		AggMatchNsPerDoc:     aggNs,
		OracleDocs:           docs,
	}
	runtime.KeepAlive(agg)

	fmt.Printf("aggregate: %d filters -> %d covers, %d stored entries for %d logical postings over %d terms; flat %.1f B/filter, agg %.1f B/filter (%.1f%% reduction); match %.0f ns/doc flat vs %.0f ns/doc agg\n",
		rep.Filters, rep.Covers, rep.StoredEntries, rep.LogicalPostings, rep.PostingTerms,
		rep.FlatBytesPerFilter, rep.AggBytesPerFilter, rep.Reduction*100,
		rep.FlatMatchNsPerDoc, rep.AggMatchNsPerDoc)

	if rep.Reduction < aggregateReductionFloor {
		return fmt.Errorf("index memory reduction %.1f%% is below the %.0f%% acceptance floor (flat %.1f B/filter, agg %.1f B/filter)",
			rep.Reduction*100, aggregateReductionFloor*100, rep.FlatBytesPerFilter, rep.AggBytesPerFilter)
	}
	if baselinePath != "" {
		if err := checkAggregateBaseline(baselinePath, rep); err != nil {
			return err
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("aggregate: %d docs oracle-verified -> %s\n", rep.OracleDocs, outPath)
	return nil
}
