// Command movebench regenerates every figure of the paper's evaluation
// (§VI). Each figure prints the same series the paper plots, produced by
// the calibrated synthetic workloads and the virtual-time cost model.
//
// Usage:
//
//	movebench -fig stats         # §VI.A dataset statistics
//	movebench -fig 4             # filter-term popularity (Figure 4)
//	movebench -fig 5             # document-term frequency (Figure 5)
//	movebench -fig 6 | 7         # single-node throughput (Figures 6–7)
//	movebench -fig 8a | 8b | 8c  # cluster throughput sweeps (Figure 8)
//	movebench -fig 9a | 9b       # load distributions (Figure 9 a–b)
//	movebench -fig 9c | 9d       # failure experiments (Figure 9 c–d)
//	movebench -fig ablation      # design-choice ablations
//	movebench -fig all           # everything
//
// Workloads are scaled by -scale (default 0.01 of paper size); -scale 1
// runs at paper scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"text/tabwriter"
	"time"

	"github.com/movesys/move/internal/cluster"
	"github.com/movesys/move/internal/dataset"
	"github.com/movesys/move/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: stats, 4, 5, 6, 7, 8a, 8b, 8c, 9a, 9b, 9c, 9d, ablation, trace, bench, alloc, churn, delivery, aggregate, wire, all")
	scale := flag.Float64("scale", float64(experiments.DefaultScale), "workload scale relative to the paper (1.0 = paper scale)")
	seed := flag.Int64("seed", 1, "random seed")
	filtersTrace := flag.String("filters-trace", "", "trace file of preprocessed filters (one per line) for -fig trace")
	docsTrace := flag.String("docs-trace", "", "trace file of preprocessed documents for -fig trace")
	nodes := flag.Int("nodes", 20, "cluster size for -fig trace, -fig bench, and -fig alloc")
	out := flag.String("out", "", "output path for -fig bench / -fig alloc ('-' = stdout; default BENCH_publish.json / BENCH_alloc.json)")
	baseline := flag.String("baseline", "", "prior report of the same figure to guard against (bench: >20% publish p95 regression fails; alloc: >10% allocs/op or B/op regression fails)")
	benchFilters := flag.Int("bench-filters", 2000, "registered filters for -fig bench and -fig alloc")
	benchDocs := flag.Int("bench-docs", 500, "published documents for -fig bench and -fig alloc")
	benchSubs := flag.Int("bench-subs", 100_000, "simulated concurrent subscribers for -fig delivery")
	subs := flag.Int("subs", 0, "override subscriber count for -fig delivery (0 = -bench-subs); >=1M enables the frames_per_syscall > 2.0 gate")
	deliveryDocs := flag.Int("delivery-docs", 150, "published documents for -fig delivery")
	deliveryShards := flag.Int("delivery-shards", 0, "session registry shards per hub for -fig delivery (0 = default)")
	deliveryWave := flag.Int("delivery-wave", 1, "documents published before each drain barrier for -fig delivery (1 = drain per doc)")
	deliveryFlushBatch := flag.Int("delivery-flush-batch", 256, "max events per SendEvents frame for -fig delivery")
	deliveryFlushDelay := flag.Duration("delivery-flush-delay", 0, "writer coalescing window for -fig delivery (0 = flush immediately)")
	wireNodes := flag.Int("wire-nodes", 8, "moved processes to launch for -fig wire")
	wireSubs := flag.Int("wire-subs", 800, "live TCP subscriber sessions for -fig wire")
	wireDocs := flag.Int("wire-docs", 1600, "published documents per round for -fig wire")
	wireConcurrency := flag.Int("wire-concurrency", 128, "concurrent publisher workers for -fig wire")
	wireFlushDelay := flag.Duration("wire-flush-delay", 200*time.Microsecond, "RPC writer coalescing window for -fig wire (0 = natural coalescing only)")
	wireMoved := flag.String("wire-moved", "", "prebuilt moved binary for -fig wire ('' = go build ./cmd/moved)")
	wirePeers := flag.String("wire-peers", "", "existing cluster map id=host:port,... for -fig wire (multi-host mode: publish-only, no spawning, no gates)")
	aggFilters := flag.Int("aggregate-filters", 1_000_000, "registered synthetic Zipf filters for -fig aggregate")
	aggCatalog := flag.Int("aggregate-catalog", 150_000, "distinct predicate catalog size for -fig aggregate (instances are Zipf-drawn from it)")
	aggTerms := flag.Int("aggregate-distinct-terms", 20_000, "filter/document vocabulary size for -fig aggregate")
	aggDocs := flag.Int("aggregate-docs", 20, "oracle-verified documents for -fig aggregate")
	pprofDir := flag.String("pprof", "", "directory to write cpu.pprof and heap.pprof profiles of the run")
	flag.Parse()

	stopProfiles, err := startProfiles(*pprofDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "movebench: %v\n", err)
		os.Exit(1)
	}
	dopts := deliveryOpts{
		Subs:       *benchSubs,
		Docs:       *deliveryDocs,
		Shards:     *deliveryShards,
		Wave:       *deliveryWave,
		FlushBatch: *deliveryFlushBatch,
		FlushDelay: *deliveryFlushDelay,
	}
	if *subs > 0 {
		dopts.Subs = *subs
	}
	wopts := wireOpts{
		Nodes:       *wireNodes,
		Subs:        *wireSubs,
		Docs:        *wireDocs,
		Concurrency: *wireConcurrency,
		FlushDelay:  *wireFlushDelay,
		MovedBin:    *wireMoved,
		Peers:       *wirePeers,
	}
	err = dispatch(*fig, *scale, *seed, *filtersTrace, *docsTrace, *nodes, *out, *baseline, *benchFilters, *benchDocs, dopts, wopts, *aggFilters, *aggCatalog, *aggTerms, *aggDocs)
	if perr := stopProfiles(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "movebench: %v\n", err)
		os.Exit(1)
	}
}

func dispatch(fig string, scale float64, seed int64, filtersTrace, docsTrace string, nodes int, out, baseline string, benchFilters, benchDocs int, dopts deliveryOpts, wopts wireOpts, aggFilters, aggCatalog, aggTerms, aggDocs int) error {
	switch fig {
	case "wire":
		if out == "" {
			out = "BENCH_wire.json"
		}
		return runWireFig(out, baseline, wopts, seed)
	case "aggregate":
		if out == "" {
			out = "BENCH_aggregate.json"
		}
		return runAggregateFig(out, baseline, aggFilters, aggCatalog, aggTerms, aggDocs, seed)
	case "delivery":
		if out == "" {
			out = "BENCH_delivery.json"
		}
		return runDeliveryFig(out, baseline, nodes, dopts, seed)
	case "bench":
		if out == "" {
			out = "BENCH_publish.json"
		}
		return runBench(out, baseline, nodes, benchFilters, benchDocs, seed)
	case "alloc":
		if out == "" {
			out = "BENCH_alloc.json"
		}
		return runAllocFig(out, baseline, nodes, benchFilters, benchDocs, seed)
	case "churn":
		if out == "" {
			out = "BENCH_churn.json"
		}
		return runChurnFig(out, baseline, nodes, 15, seed)
	case "trace":
		return runTrace(filtersTrace, docsTrace, nodes, seed)
	}
	return run(fig, experiments.Scale(scale), seed)
}

// startProfiles begins CPU profiling into dir/cpu.pprof and returns a
// stop function that finalizes it and snapshots dir/heap.pprof. With an
// empty dir both are no-ops.
func startProfiles(dir string) (func() error, error) {
	if dir == "" {
		return func() error { return nil }, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cpuF, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpuF); err != nil {
		cpuF.Close()
		return nil, fmt.Errorf("start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := cpuF.Close(); err != nil {
			return err
		}
		heapF, err := os.Create(filepath.Join(dir, "heap.pprof"))
		if err != nil {
			return err
		}
		defer heapF.Close()
		runtime.GC() // flatten transient garbage so the heap profile shows retained state
		if err := pprof.WriteHeapProfile(heapF); err != nil {
			return fmt.Errorf("write heap profile: %w", err)
		}
		fmt.Printf("pprof: wrote %s and %s\n", filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "heap.pprof"))
		return nil
	}, nil
}

// runTrace measures the three schemes on user-supplied traces — the path
// for reproducing on the real MSN/TREC datasets when available.
func runTrace(filtersPath, docsPath string, nodes int, seed int64) error {
	if filtersPath == "" || docsPath == "" {
		return fmt.Errorf("-fig trace requires -filters-trace and -docs-trace")
	}
	filters, err := dataset.LoadTrace(filtersPath)
	if err != nil {
		return err
	}
	docs, err := dataset.LoadTrace(docsPath)
	if err != nil {
		return err
	}
	w := header(fmt.Sprintf("trace-driven run: %d filters, %d docs, %d nodes", len(filters), len(docs), nodes))
	fmt.Fprintf(w, "scheme\tthroughput\tcomplete\tavailability\n")
	for _, scheme := range []cluster.Scheme{cluster.SchemeMove, cluster.SchemeIL, cluster.SchemeRS} {
		out, err := experiments.RunClusterWithTraces(experiments.ClusterParams{
			Scheme: scheme,
			Nodes:  nodes,
			Seed:   seed,
		}, filters, docs)
		if err != nil {
			return fmt.Errorf("scheme %v: %w", scheme, err)
		}
		fmt.Fprintf(w, "%v\t%.2f\t%d/%d\t%.3f\n", scheme, out.Throughput, out.Complete, out.Docs, out.Availability)
	}
	return w.Flush()
}

func run(fig string, scale experiments.Scale, seed int64) error {
	runners := map[string]func(experiments.Scale, int64) error{
		"stats":    runStats,
		"4":        runFig4,
		"5":        runFig5,
		"6":        runFig6,
		"7":        runFig7,
		"8a":       runFig8a,
		"8b":       runFig8b,
		"8c":       runFig8c,
		"9a":       runFig9a,
		"9b":       runFig9b,
		"9c":       runFig9c,
		"9d":       runFig9d,
		"ablation": runAblation,
	}
	if fig == "all" {
		for _, name := range []string{"stats", "4", "5", "6", "7", "8a", "8b", "8c", "9a", "9b", "9c", "9d", "ablation"} {
			if err := runners[name](scale, seed); err != nil {
				return fmt.Errorf("fig %s: %w", name, err)
			}
		}
		return nil
	}
	r, ok := runners[fig]
	if !ok {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return r(scale, seed)
}

func header(title string) *tabwriter.Writer {
	fmt.Printf("\n=== %s ===\n", title)
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func runStats(scale experiments.Scale, seed int64) error {
	st, err := experiments.RunDatasetStats(scale, seed)
	if err != nil {
		return err
	}
	w := header("§VI.A dataset statistics (measured vs paper)")
	fmt.Fprintf(w, "metric\tmeasured\tpaper\n")
	fmt.Fprintf(w, "mean terms/filter\t%.3f\t%.3f\n", st.MeanTermsPerFilter, dataset.MSNMeanTermsPerFilter)
	fmt.Fprintf(w, "P(len<=1)\t%.4f\t%.4f\n", st.FilterLenCDF1, dataset.MSNLenCDF1)
	fmt.Fprintf(w, "P(len<=2)\t%.4f\t%.4f\n", st.FilterLenCDF2, dataset.MSNLenCDF2)
	fmt.Fprintf(w, "P(len<=3)\t%.4f\t%.4f\n", st.FilterLenCDF3, dataset.MSNLenCDF3)
	fmt.Fprintf(w, "top-1000-equivalent popularity mass\t%.3f\t%.3f\n", st.TopAnchorMass, dataset.MSNTop1000Mass)
	fmt.Fprintf(w, "mean terms/doc (WT)\t%.1f\t%.1f\n", st.MeanTermsWT, dataset.WTMeanTermsPerDoc)
	fmt.Fprintf(w, "mean terms/doc (AP, scaled)\t%.1f\t%.1f\n", st.MeanTermsAP, dataset.APMeanTermsPerDoc)
	fmt.Fprintf(w, "entropy WT (sample)\t%.3f\t%.4f\n", st.EntropyWT, dataset.WTEntropy)
	fmt.Fprintf(w, "entropy AP (sample)\t%.3f\t%.4f\n", st.EntropyAP, dataset.APEntropy)
	fmt.Fprintf(w, "top query∩doc overlap WT\t%.3f\t%.3f\n", st.OverlapWT, dataset.WTOverlapTop1000)
	fmt.Fprintf(w, "top query∩doc overlap AP\t%.3f\t%.3f\n", st.OverlapAP, dataset.APOverlapTop1000)
	return w.Flush()
}

func runFig4(scale experiments.Scale, seed int64) error {
	pts, err := experiments.RunFigure4(scale, seed, 25)
	if err != nil {
		return err
	}
	w := header("Figure 4: ranked filter-term popularity (log-log)")
	fmt.Fprintf(w, "rank\tpopularity\n")
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%.3e\n", p.Rank, p.Rate)
	}
	return w.Flush()
}

func runFig5(scale experiments.Scale, seed int64) error {
	s, err := experiments.RunFigure5(scale, seed, 25)
	if err != nil {
		return err
	}
	w := header("Figure 5: ranked document-term frequency (log-log)")
	fmt.Fprintf(w, "rank(WT)\tfreq(WT)\trank(AP)\tfreq(AP)\n")
	n := len(s.WT)
	if len(s.AP) > n {
		n = len(s.AP)
	}
	for i := 0; i < n; i++ {
		var wr, ar string
		var wf, af string
		if i < len(s.WT) {
			wr, wf = fmt.Sprint(s.WT[i].Rank), fmt.Sprintf("%.3e", s.WT[i].Rate)
		}
		if i < len(s.AP) {
			ar, af = fmt.Sprint(s.AP[i].Rank), fmt.Sprintf("%.3e", s.AP[i].Rate)
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", wr, wf, ar, af)
	}
	return w.Flush()
}

// singleNodeSweep mirrors the paper's R ∈ {1e5, 1e6, 1e7} and Q ∈
// {1..1000}, scaled.
func singleNodeSweep(scale experiments.Scale) ([]int, []int) {
	base := float64(scale) * 10 // R scales with filters×docs ≈ scale²·1e7; keep tractable
	products := []int{
		maxInt(10_000, int(1e5*base)),
		maxInt(50_000, int(1e6*base)),
		maxInt(200_000, int(1e7*base)),
	}
	docCounts := []int{2, 10, 100, 500, 1000}
	return products, docCounts
}

func runSingleNode(scale experiments.Scale, seed int64, corpus dataset.CorpusKind, title string, mean float64) error {
	products, docCounts := singleNodeSweep(scale)
	pts, err := experiments.RunSingleNode(experiments.SingleNodeParams{
		Corpus:       corpus,
		Products:     products,
		DocCounts:    docCounts,
		Seed:         seed,
		Vocab:        30_000,
		MeanDocTerms: mean,
	})
	if err != nil {
		return err
	}
	w := header(title)
	fmt.Fprintf(w, "R=PxQ\tQ docs\tP filters\tthroughput\n")
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%d\t%d\t%.3g\n", p.R, p.Q, p.P, p.Throughput)
	}
	return w.Flush()
}

func runFig6(scale experiments.Scale, seed int64) error {
	return runSingleNode(scale, seed, dataset.CorpusAP,
		"Figure 6: single-node throughput, TREC-AP-like docs", 1500)
}

func runFig7(scale experiments.Scale, seed int64) error {
	return runSingleNode(scale, seed, dataset.CorpusWT,
		"Figure 7: single-node throughput, TREC-WT-like docs", 0)
}

func printSchemePoints(title, xlabel string, pts []experiments.SchemePoint) error {
	w := header(title)
	fmt.Fprintf(w, "%s\tMove\tIL\tRS\n", xlabel)
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.1f\n", p.X, p.Move, p.IL, p.RS)
	}
	return w.Flush()
}

func runFig8a(scale experiments.Scale, seed int64) error {
	pts, err := experiments.RunFigure8a(scale)
	if err != nil {
		return err
	}
	return printSchemePoints("Figure 8(a): throughput vs number of filters P", "P filters", pts)
}

func runFig8b(scale experiments.Scale, seed int64) error {
	pts, err := experiments.RunFigure8b(scale)
	if err != nil {
		return err
	}
	return printSchemePoints("Figure 8(b): throughput vs number of documents Q", "Q docs", pts)
}

func runFig8c(scale experiments.Scale, seed int64) error {
	pts, err := experiments.RunFigure8c(scale)
	if err != nil {
		return err
	}
	return printSchemePoints("Figure 8(c): throughput vs number of nodes N", "N nodes", pts)
}

func runFig9Load(scale experiments.Scale, storage bool, title string) error {
	load, err := experiments.RunFigure9Load(scale, storage)
	if err != nil {
		return err
	}
	w := header(title)
	fmt.Fprintf(w, "node rank\tMove\tIL\tRS\n")
	for i := range load.RS {
		fmt.Fprintf(w, "%d\t%.2f\t%.2f\t%.2f\n", i+1, load.Move[i], load.IL[i], load.RS[i])
	}
	fmt.Fprintf(w, "CV\t%.3f\t%.3f\t%.3f\n", load.CVMove, load.CVIL, load.CVRS)
	return w.Flush()
}

func runFig9a(scale experiments.Scale, seed int64) error {
	return runFig9Load(scale, true, "Figure 9(a): storage cost per node (normalized by RS mean)")
}

func runFig9b(scale experiments.Scale, seed int64) error {
	return runFig9Load(scale, false, "Figure 9(b): matching cost per node (normalized by RS mean)")
}

func runFig9cd(scale experiments.Scale, throughput bool, title string) error {
	rows, err := experiments.RunFigure9Failure(scale)
	if err != nil {
		return err
	}
	w := header(title)
	if throughput {
		fmt.Fprintf(w, "placement\tthroughput@0%%\tthroughput@30%%\n")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\n", r.Placement, r.ThroughputOK, r.ThroughputFail)
		}
	} else {
		fmt.Fprintf(w, "placement\tavailability@0%%\tavailability@30%%\n")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.3f\t%.3f\n", r.Placement, r.AvailabilityOK, r.AvailabilityFail)
		}
	}
	return w.Flush()
}

func runFig9c(scale experiments.Scale, seed int64) error {
	return runFig9cd(scale, true, "Figure 9(c): throughput under rack-correlated node failure")
}

func runFig9d(scale experiments.Scale, seed int64) error {
	return runFig9cd(scale, false, "Figure 9(d): filter availability under rack-correlated node failure")
}

func runAblation(scale experiments.Scale, seed int64) error {
	strat, err := experiments.RunAblationStrategies(scale)
	if err != nil {
		return err
	}
	w := header("Ablation: allocation strategy (§IV factors)")
	fmt.Fprintf(w, "strategy\tthroughput\n")
	for _, p := range strat {
		fmt.Fprintf(w, "%s\t%.1f\n", p.Name, p.Throughput)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	bl, err := experiments.RunAblationBloom(scale)
	if err != nil {
		return err
	}
	w = header("Ablation: dissemination Bloom gate (§V)")
	fmt.Fprintf(w, "variant\tthroughput\n")
	for _, p := range bl {
		fmt.Fprintf(w, "%s\t%.1f\n", p.Name, p.Throughput)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	ratio, err := experiments.RunAblationRatio(scale)
	if err != nil {
		return err
	}
	w = header("Ablation: allocation ratio (§IV-A replication vs separation)")
	fmt.Fprintf(w, "variant\tthroughput\n")
	for _, p := range ratio {
		fmt.Fprintf(w, "%s\t%.1f\n", p.Name, p.Throughput)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	grid, err := experiments.RunAblationGrid(scale)
	if err != nil {
		return err
	}
	w = header("Ablation: per-node vs per-term allocation grids (§V)")
	fmt.Fprintf(w, "variant\tthroughput\n")
	for _, p := range grid {
		fmt.Fprintf(w, "%s\t%.1f\n", p.Name, p.Throughput)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	policy, err := experiments.RunAblationPolicy(scale)
	if err != nil {
		return err
	}
	w = header("Ablation: proactive vs passive allocation policy (§V)")
	fmt.Fprintf(w, "variant\tthroughput\n")
	for _, p := range policy {
		fmt.Fprintf(w, "%s\t%.1f\n", p.Name, p.Throughput)
	}
	return w.Flush()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
