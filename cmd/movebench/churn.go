package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/movesys/move/internal/cluster"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/resilience"
	"github.com/movesys/move/internal/transport"
)

// churnReport is the JSON document `movebench -fig churn` writes: the
// two-phase reallocation protocol's latency and safety numbers under a
// Zipf-drifting, flash-crowding workload with seeded fault injection.
// Checked into the repo as BENCH_churn.json so PRs carry a reallocation
// baseline the same way BENCH_publish.json carries a publish one.
type churnReport struct {
	GeneratedBy string `json:"generated_by"`
	Nodes       int    `json:"nodes"`
	Rounds      int    `json:"rounds"`
	Filters     int    `json:"filters"`
	Seed        int64  `json:"seed"`

	// RoundsCommitted / RoundsAborted partition the reallocation rounds
	// the soak drove (aborts come from nodes crashed mid-round).
	RoundsCommitted int64 `json:"rounds_committed"`
	RoundsAborted   int64 `json:"rounds_aborted"`
	// ReallocP50MS / ReallocP95MS summarize full round latency (stats
	// pull through commit + GC).
	ReallocP50MS float64 `json:"realloc_p50_ms"`
	ReallocP95MS float64 `json:"realloc_p95_ms"`
	// DualReadWindows counts cutovers a node observed; DualReadP95MS is
	// the p95 length of the window publishes spent fanning out to both
	// grids.
	DualReadWindows int64   `json:"dual_read_windows"`
	DualReadP95MS   float64 `json:"dual_read_p95_ms"`
	// MigratedFilters / GCFilters are filter copies shipped to new
	// placements and collected from retired ones.
	MigratedFilters int64 `json:"migrated_filters"`
	GCFilters       int64 `json:"gc_filters"`

	// OracleDocs is the number of publishes verified byte-identical
	// against the brute-force oracle; DroppedMatches MUST be zero — any
	// other value fails the run before the report is written.
	OracleDocs     int `json:"oracle_docs"`
	DroppedMatches int `json:"dropped_matches"`

	FinalEpoch uint64 `json:"final_epoch"`
}

// churnTolerance is the regression budget enforced against -baseline on
// the latency stats (realloc round p95, dual-read window p95).
const churnTolerance = 0.10

// churnSlackMS absorbs scheduler noise on small absolute numbers: a stat
// must exceed the baseline by both 10% and this many milliseconds to
// count as a regression.
const churnSlackMS = 25.0

// checkChurnBaseline compares a fresh report against the checked-in
// baseline. Correctness fields are not compared — DroppedMatches != 0
// already failed the run — only the latency envelope is guarded.
func checkChurnBaseline(path string, rep churnReport) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("churn: baseline %s not found, skipping regression check\n", path)
			return nil
		}
		return fmt.Errorf("read baseline: %w", err)
	}
	var base churnReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	checks := []struct {
		name      string
		base, got float64
	}{
		{"realloc_p95_ms", base.ReallocP95MS, rep.ReallocP95MS},
		{"dual_read_p95_ms", base.DualReadP95MS, rep.DualReadP95MS},
	}
	for _, c := range checks {
		if c.base <= 0 {
			continue
		}
		limit := c.base*(1+churnTolerance) + churnSlackMS
		if c.got > limit {
			return fmt.Errorf("%s regression: %.2fms vs baseline %.2fms (budget +%d%% +%.0fms)",
				c.name, c.got, c.base, int(churnTolerance*100), churnSlackMS)
		}
		fmt.Printf("churn: %s %.2fms within budget of baseline %.2fms\n", c.name, c.got, c.base)
	}
	return nil
}

// runChurnFig drives the two-phase reallocation protocol through a chaos
// soak: a Zipf-drifting workload with flash crowds, seeded fault injection
// on the data path, crash/recover churn, and reallocation rounds racing
// live publishes through their dual-read windows. Every publish's match
// set is checked byte-identical against a brute-force oracle; a single
// dropped (or phantom) match fails the run.
func runChurnFig(outPath, baselinePath string, nodes, rounds int, seed int64) error {
	c, err := cluster.New(cluster.Config{
		Scheme:   cluster.SchemeMove,
		Nodes:    nodes,
		RackSize: 4,
		Capacity: 200_000,
		Seed:     seed,
		Fault: &transport.FaultConfig{
			Seed:    seed,
			Default: transport.FaultProbs{Drop: 0.01, Error: 0.01, Duplicate: 0.01},
		},
		Resilience: &resilience.Policy{
			MaxAttempts:      5,
			BaseDelay:        200 * time.Microsecond,
			MaxDelay:         2 * time.Millisecond,
			BreakerThreshold: 12,
			BreakerCooldown:  20 * time.Millisecond,
			Retryable:        transport.IsAvailabilityError,
		},
	})
	if err != nil {
		return err
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))

	var oracle []oracleFilter
	register := func(sub string, terms []string) error {
		id, err := c.Register(ctx, sub, terms, model.MatchAny, 0)
		if err != nil {
			return err
		}
		set := make(map[string]struct{}, len(terms))
		for _, t := range terms {
			set[t] = struct{}{}
		}
		oracle = append(oracle, oracleFilter{id: id, sub: sub, set: set})
		return nil
	}
	oracleDocs, dropped := 0, 0
	checkPublish := func(doc []string) error {
		res, err := c.Publish(ctx, doc)
		if err != nil {
			return fmt.Errorf("publish %v: %w", doc, err)
		}
		oracleDocs++
		if canonicalMatches(res.Matches) != oracleMatches(oracle, doc) {
			dropped++
		}
		return nil
	}

	// Zipf-drifting vocabulary: the rank→keyword mapping rotates every
	// round so the hot set migrates across home nodes, forcing real
	// placement changes.
	const vocab = 48
	zipf := rand.NewZipf(rng, 1.3, 1.0, vocab-1)
	term := func(round int) string {
		return fmt.Sprintf("k%d", (int(zipf.Uint64())+round)%vocab)
	}

	for i := 0; i < 250; i++ {
		if err := register(fmt.Sprintf("seed-%d", i), []string{term(0), term(0)}); err != nil {
			return err
		}
	}
	for i := 0; i < 40; i++ {
		if err := checkPublish([]string{term(0), term(0)}); err != nil {
			return err
		}
	}

	for round := 1; round <= rounds; round++ {
		for i := 0; i < 10; i++ {
			if err := register(fmt.Sprintf("r%d-%d", round, i), []string{term(round), term(round)}); err != nil {
				return err
			}
		}
		flash := ""
		if round%4 == 0 {
			flash = fmt.Sprintf("flash%d", round)
			for i := 0; i < 40; i++ {
				if err := register(fmt.Sprintf("f%d-%d", round, i), []string{flash}); err != nil {
					return err
				}
			}
			for i := 0; i < 25; i++ {
				if err := checkPublish([]string{flash, term(round)}); err != nil {
					return err
				}
			}
		}

		if round%3 == 0 {
			// Crash a slice of the cluster, reallocate (commit or clean
			// abort — both counted by the metrics), recover.
			victims := c.FailFraction(0.25, round%2 == 0)
			_, _ = c.Allocate(ctx) // aborts are an expected outcome here
			c.RecoverNodes(victims...)
		}

		// A reallocation round racing live publishes: every publish below
		// may cross the dual-read window and must still match exactly.
		done := make(chan error, 1)
		go func() {
			_, err := c.Allocate(context.Background())
			done <- err
		}()
		for i := 0; i < 25; i++ {
			doc := []string{term(round), term(round)}
			if flash != "" && i%3 == 0 {
				doc = append(doc, flash)
			}
			if err := checkPublish(doc); err != nil {
				return err
			}
		}
		<-done // abort is acceptable; safety is asserted by the oracle
		for i := 0; i < 10; i++ {
			if err := checkPublish([]string{term(round), term(round)}); err != nil {
				return err
			}
		}
	}

	if dropped != 0 {
		return fmt.Errorf("churn: %d of %d publishes diverged from the brute-force oracle (dropped or phantom matches)", dropped, oracleDocs)
	}

	snap := c.Metrics().Snapshot()
	hists := c.Metrics().Histograms()
	roundH := hists["realloc.round.latency"]
	dualH := hists["realloc.dualread.window"]
	rep := churnReport{
		GeneratedBy:     "movebench -fig churn",
		Nodes:           nodes,
		Rounds:          rounds,
		Filters:         len(oracle),
		Seed:            seed,
		RoundsCommitted: snap["realloc.rounds.committed"],
		RoundsAborted:   snap["realloc.rounds.aborted"],
		ReallocP50MS:    float64(roundH.P50NS) / 1e6,
		ReallocP95MS:    float64(roundH.P95NS) / 1e6,
		DualReadWindows: dualH.Count,
		DualReadP95MS:   float64(dualH.P95NS) / 1e6,
		MigratedFilters: snap["realloc.filters.migrated"],
		GCFilters:       snap["realloc.gc.filters"],
		OracleDocs:      oracleDocs,
		DroppedMatches:  dropped,
		FinalEpoch:      c.CommittedEpoch(),
	}
	if rep.RoundsCommitted == 0 {
		return fmt.Errorf("churn: no reallocation round committed; the soak exercised nothing")
	}
	if rep.DualReadWindows == 0 {
		return fmt.Errorf("churn: no dual-read window observed; cutovers never overlapped publishes")
	}
	if baselinePath != "" {
		if err := checkChurnBaseline(baselinePath, rep); err != nil {
			return err
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("churn: %d rounds (%d committed, %d aborted), realloc p95 %.2fms, dual-read p95 %.2fms over %d windows, %d migrated, %d gc'd, %d publishes oracle-verified, 0 dropped -> %s\n",
		rep.Rounds, rep.RoundsCommitted, rep.RoundsAborted, rep.ReallocP95MS,
		rep.DualReadP95MS, rep.DualReadWindows, rep.MigratedFilters, rep.GCFilters,
		rep.OracleDocs, outPath)
	return nil
}
