GO ?= go

.PHONY: build vet test race bench fuzz-smoke bench-publish bench-alloc soak-churn bench-churn soak-delivery bench-delivery bench-aggregate bench-wire ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# Short native-fuzzing runs of every checked-in fuzz target — enough to
# shake out regressions in the codec and tokenizer invariants on each CI
# run without burning minutes.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzCodecRoundTrip -fuzztime=10s ./internal/codec
	$(GO) test -run='^$$' -fuzz=FuzzTokenize -fuzztime=10s ./internal/text
	$(GO) test -run='^$$' -fuzz=FuzzDeliverFrameRoundTrip -fuzztime=10s ./internal/delivery
	$(GO) test -run='^$$' -fuzz=FuzzIndexRegisterMatch -fuzztime=10s ./internal/index

# Regenerate the checked-in publish-latency baseline (BENCH_publish.json):
# e2e publish p50/p95/p99 plus single-vs-batch match throughput on the
# calibrated workload. The fresh run is compared against the checked-in
# baseline first — a >20% publish p95 regression fails the target (and
# CI) before the file is overwritten.
bench-publish:
	$(GO) run ./cmd/movebench -fig bench -out BENCH_publish.json -baseline BENCH_publish.json

# Regenerate the checked-in allocation baseline (BENCH_alloc.json):
# allocs/op and B/op for the warm match hot path, single publish, and the
# batched pipeline, with match results verified byte-identical against a
# brute-force oracle. The fresh run is compared against the checked-in
# baseline first — a >10% allocs/op or B/op regression fails the target
# (and CI) before the file is overwritten.
bench-alloc:
	$(GO) run ./cmd/movebench -fig alloc -out BENCH_alloc.json -baseline BENCH_alloc.json

# Full chaos soak of the two-phase reallocation protocol under the race
# detector: 100 consecutive realloc rounds with Zipf-drift, flash crowds,
# seeded fault injection, crash/recover churn, and forced mid-prepare
# aborts; every publish is asserted byte-identical to a brute-force
# oracle, and every aborted round must leave the cluster on the old epoch
# with no partial state.
soak-churn:
	CHURN_ROUNDS=100 $(GO) test -race -run TestChurnSoak -timeout 900s -v ./internal/cluster

# Regenerate the checked-in churn baseline (BENCH_churn.json): realloc
# round p50/p95 latency, dual-read window p95, migrated/GC'd filter
# counts from a fault-injected soak with live publishes racing every
# cutover. dropped_matches must be 0 or the run fails outright; a >10%
# (+25ms slack) regression on either p95 against the checked-in baseline
# fails the target (and CI) before the file is overwritten.
bench-churn:
	$(GO) run ./cmd/movebench -fig churn -out BENCH_churn.json -baseline BENCH_churn.json

# Chaos soak of the end-to-end delivery tier under the race detector:
# subscriber connect/disconnect churn, stalled readers triggering the
# slow-consumer policy, node crash/recover cycles, and reallocation rounds
# racing live publishes. Every published document's notifications must be
# fully accounted — received, pending in a bounded queue, policy-dropped,
# or route-lost — with zero silent losses and zero phantom deliveries.
soak-delivery:
	SOAK_DELIVERY_ROUNDS=40 $(GO) test -race -run TestDeliverySoak -timeout 900s -v ./internal/cluster

# Regenerate the checked-in delivery baselines. The default (CI) profile
# attaches 100k live subscriber sessions on a 20-node cluster with
# immediate flushing, verifies every publish's fan-out against a
# brute-force inverted-index oracle, and records publish->delivery
# p50/p99 and fan-out amplification into BENCH_delivery.json. dropped
# must be 0 or the run fails outright; a >10% (+25ms slack) p99
# regression against the checked-in baseline fails the target (and CI)
# before the file is overwritten.
#
# `make bench-delivery SUBS=1000000` runs the full-scale profile instead:
# 1M live sessions, wave publishing inside one writer-coalescing window,
# same oracle gates, plus a hard frames_per_syscall > 2.0 requirement;
# the result lands in BENCH_delivery_1m.json. Too slow for every CI run —
# regenerate it whenever the delivery tier changes.
SUBS ?= 100000
bench-delivery:
ifeq ($(SUBS),1000000)
	$(GO) run ./cmd/movebench -fig delivery -subs 1000000 -delivery-docs 96 -delivery-wave 96 -delivery-flush-batch 4 -delivery-flush-delay 120s -out BENCH_delivery_1m.json -baseline BENCH_delivery_1m.json
else
	$(GO) run ./cmd/movebench -fig delivery -subs $(SUBS) -out BENCH_delivery.json -baseline BENCH_delivery.json
endif

# Regenerate the checked-in index-aggregation baseline
# (BENCH_aggregate.json): serving-layer bytes/filter for the flat vs the
# aggregated covering index over 1M Zipf-drawn filter instances, with
# every document's aggregated match set verified byte-identical to the
# flat oracle. A reduction below the 30% acceptance floor fails outright;
# a >10% regression against the checked-in baseline (relative reduction
# lost, or agg bytes/filter gained) fails the target (and CI) before the
# file is overwritten.
bench-aggregate:
	$(GO) run ./cmd/movebench -fig aggregate -out BENCH_aggregate.json -baseline BENCH_aggregate.json

# Regenerate the checked-in real-TCP wire baseline (BENCH_wire.json): the
# harness launches WIRE_NODES separate moved processes on loopback TCP,
# attaches WIRE_SUBS live subscriber sessions, and drives WIRE_DOCS
# concurrent batched publishes per round through real sockets — once with
# the coalescing RPC writer and once with per-frame writes — verifying
# every match set and the full delivery fan-out against a brute-force
# oracle. Hard gates: the coalesced config must merge > 2.0 frames per
# write syscall and beat coalescing-off by >= 20% docs/sec; a >10%
# docs/sec regression against the checked-in baseline fails the target
# (and CI) before the file is overwritten.
#
# Knobs: WIRE_NODES (daemon count), WIRE_DOCS (documents per measured
# round), WIRE_SUBS (live sessions), WIRE_FLUSH_DELAY (the writer's
# coalescing window; 0 = natural coalescing only). The same window is
# passed to every daemon's -rpc.flush-delay and the bench client.
WIRE_NODES ?= 8
WIRE_DOCS ?= 1600
WIRE_SUBS ?= 800
WIRE_FLUSH_DELAY ?= 200us
bench-wire:
	$(GO) run ./cmd/movebench -fig wire -wire-nodes $(WIRE_NODES) -wire-docs $(WIRE_DOCS) -wire-subs $(WIRE_SUBS) -wire-flush-delay $(WIRE_FLUSH_DELAY) -out BENCH_wire.json -baseline BENCH_wire.json

ci: vet build race fuzz-smoke soak-churn soak-delivery bench-publish bench-alloc bench-churn bench-delivery bench-aggregate bench-wire
