GO ?= go

.PHONY: build vet test race bench fuzz-smoke bench-publish bench-alloc ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# Short native-fuzzing runs of every checked-in fuzz target — enough to
# shake out regressions in the codec and tokenizer invariants on each CI
# run without burning minutes.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzCodecRoundTrip -fuzztime=10s ./internal/codec
	$(GO) test -run='^$$' -fuzz=FuzzTokenize -fuzztime=10s ./internal/text

# Regenerate the checked-in publish-latency baseline (BENCH_publish.json):
# e2e publish p50/p95/p99 plus single-vs-batch match throughput on the
# calibrated workload. The fresh run is compared against the checked-in
# baseline first — a >20% publish p95 regression fails the target (and
# CI) before the file is overwritten.
bench-publish:
	$(GO) run ./cmd/movebench -fig bench -out BENCH_publish.json -baseline BENCH_publish.json

# Regenerate the checked-in allocation baseline (BENCH_alloc.json):
# allocs/op and B/op for the warm match hot path, single publish, and the
# batched pipeline, with match results verified byte-identical against a
# brute-force oracle. The fresh run is compared against the checked-in
# baseline first — a >10% allocs/op or B/op regression fails the target
# (and CI) before the file is overwritten.
bench-alloc:
	$(GO) run ./cmd/movebench -fig alloc -out BENCH_alloc.json -baseline BENCH_alloc.json

ci: vet build race fuzz-smoke bench-publish bench-alloc
