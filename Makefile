GO ?= go

.PHONY: build vet test race bench fuzz-smoke bench-publish ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# Short native-fuzzing runs of every checked-in fuzz target — enough to
# shake out regressions in the codec and tokenizer invariants on each CI
# run without burning minutes.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzCodecRoundTrip -fuzztime=10s ./internal/codec
	$(GO) test -run='^$$' -fuzz=FuzzTokenize -fuzztime=10s ./internal/text

# Regenerate the checked-in publish-latency baseline (BENCH_publish.json):
# e2e publish p50/p95/p99 plus single-vs-batch match throughput on the
# calibrated workload. The fresh run is compared against the checked-in
# baseline first — a >20% publish p95 regression fails the target (and
# CI) before the file is overwritten.
bench-publish:
	$(GO) run ./cmd/movebench -fig bench -out BENCH_publish.json -baseline BENCH_publish.json

ci: vet build race fuzz-smoke bench-publish
