// Newsalerts: a Google-Alerts-like scenario — the application the paper's
// introduction motivates. Thousands of users register short keyword alerts;
// a stream of news articles is pushed through the cluster; after a warm-up
// window the coordinator runs the §IV allocation so hot alert terms stop
// being hot spots.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"github.com/movesys/move"
)

// topics skew the workload: "election" and "storm" are both popular in
// alerts and frequent in articles, exactly the coupled head the paper's
// allocation targets.
var topics = []string{
	"election", "storm", "economy", "football", "energy", "health",
	"science", "travel", "housing", "markets",
}

var rareTopics = []string{
	"beekeeping", "origami", "curling", "philately", "speleology",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "newsalerts: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	cluster, err := move.NewCluster(move.Config{Nodes: 12, Seed: 7})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(7))

	// 2000 users register alerts; popularity is Zipf-ish over topics.
	const users = 2000
	for i := 0; i < users; i++ {
		topic := topics[int(rng.ExpFloat64())%len(topics)]
		query := topic
		if rng.Float64() < 0.4 {
			query += " " + topics[rng.Intn(len(topics))]
		}
		if rng.Float64() < 0.1 {
			query = rareTopics[rng.Intn(len(rareTopics))]
		}
		if _, err := cluster.Subscribe(fmt.Sprintf("user-%04d", i), query); err != nil {
			return err
		}
	}
	fmt.Printf("registered %d alert subscriptions\n", users)

	ctx := context.Background()
	if err := cluster.RefreshBloom(ctx); err != nil {
		return err
	}

	// Warm-up stream teaches the coordinator the document-term frequency
	// q_i, then the allocation round replicates/separates the hot filter
	// sets (proactive policy, §V).
	for i := 0; i < 100; i++ {
		if _, err := cluster.Publish(article(rng)); err != nil {
			return err
		}
	}
	if err := cluster.Allocate(ctx); err != nil {
		return err
	}
	fmt.Println("allocation round complete")

	// Live stream.
	matched, complete := 0, 0
	const live = 300
	for i := 0; i < live; i++ {
		receipt, err := cluster.Publish(article(rng))
		if err != nil {
			return err
		}
		matched += receipt.Matched
		if receipt.Complete {
			complete++
		}
	}
	fmt.Printf("published %d articles: %d fully disseminated, %.1f alerts fired per article\n",
		live, complete, float64(matched)/live)
	st := cluster.Stats()
	fmt.Printf("cluster: %d/%d nodes alive, %d filters, availability %.3f\n",
		st.Alive, st.Nodes, st.Filters, st.AvailableFilters)
	return nil
}

// article synthesizes a headline + body with skewed topic mentions.
func article(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("today report update ")
	n := 5 + rng.Intn(15)
	for i := 0; i < n; i++ {
		b.WriteString(topics[int(rng.ExpFloat64()*1.5)%len(topics)])
		b.WriteByte(' ')
	}
	if rng.Float64() < 0.05 {
		b.WriteString(rareTopics[rng.Intn(len(rareTopics))])
	}
	return b.String()
}
