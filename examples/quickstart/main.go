// Quickstart: boot an embedded MOVE cluster, register keyword filters, and
// publish documents — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/movesys/move"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// An 8-node in-process cluster: filters are spread over a
	// consistent-hash ring exactly as they would be across machines.
	cluster, err := move.NewCluster(move.Config{Nodes: 8})
	if err != nil {
		return err
	}

	// Subscriptions are raw keyword queries; the same preprocessing
	// pipeline (stop words, Porter stemming) is applied to filters and
	// documents, so "marathons" matches "marathon".
	alice, err := cluster.Subscribe("alice", "breaking news")
	if err != nil {
		return err
	}
	bob, err := cluster.Subscribe("bob", "marathon running")
	if err != nil {
		return err
	}

	docs := []string{
		"Breaking news: a storm is approaching the coast",
		"She ran her first marathon in under four hours",
		"A quiet day with nothing to report",
	}
	for _, d := range docs {
		receipt, err := cluster.Publish(d)
		if err != nil {
			return err
		}
		fmt.Printf("published %q -> %d match(es)\n", d, receipt.Matched)
	}

	// Drain the delivery channels.
	for _, sub := range []*move.Subscription{alice, bob} {
		for {
			select {
			case n := <-sub.C:
				fmt.Printf("%s received doc %d (filter %d, terms %v)\n",
					sub.Subscriber, n.DocID, n.FilterID, n.Terms)
			case <-time.After(100 * time.Millisecond):
				goto next
			}
		}
	next:
	}

	st := cluster.Stats()
	fmt.Printf("cluster: %d nodes, %d filters, %d docs published\n", st.Nodes, st.Filters, st.Docs)
	return nil
}
