// Socialstream: the fine-grained-filtering scenario from the paper's
// introduction. Coarse "follow everything" feeds (Facebook-style) flood
// users with every posting; MOVE's keyword filters deliver only relevant
// postings. The example contrasts the two and demonstrates the AND and
// similarity-threshold matching semantics.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"strings"

	"github.com/movesys/move"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "socialstream: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	cluster, err := move.NewCluster(move.Config{Nodes: 6, Seed: 11})
	if err != nil {
		return err
	}

	// Carol follows her friends' postings but only wants hiking content —
	// boolean OR over two keywords (the paper's default model).
	carol, err := cluster.Subscribe("carol", "hiking trail")
	if err != nil {
		return err
	}
	// Dan wants posts about both go AND concurrency (conjunctive filter).
	dan, err := cluster.Subscribe("dan", "golang concurrency",
		move.SubscribeOptions{Mode: move.MatchAll})
	if err != nil {
		return err
	}
	// Erin uses a relevance threshold: a post must cover most of her
	// query's tf-idf mass to fire.
	erin, err := cluster.Subscribe("erin", "sourdough baking starter",
		move.SubscribeOptions{Mode: move.MatchThreshold, Threshold: 0.6})
	if err != nil {
		return err
	}

	posts := []string{
		"just finished an amazing hiking trip on the coastal trail",
		"my sourdough starter doubled overnight, baking tomorrow",
		"hot take: golang channels make concurrency pleasant",
		"golang generics are fine I guess",
		"brunch photos from sunday",
		"new trail shoes arrived",
		"reading about concurrency bugs in distributed systems",
		"sourdough crumb shot — the baking obsession continues",
	}
	rng := rand.New(rand.NewSource(1))
	// Pad the stream with noise so idf statistics are meaningful.
	for i := 0; i < 60; i++ {
		posts = append(posts, noisePost(rng, i))
	}

	delivered := map[string]int{}
	for _, p := range posts {
		if _, err := cluster.Publish(p); err != nil {
			return err
		}
	}
	for _, sub := range []*move.Subscription{carol, dan, erin} {
		for {
			select {
			case n := <-sub.C:
				delivered[sub.Subscriber]++
				fmt.Printf("%-5s <- doc %d %v\n", sub.Subscriber, n.DocID, n.Terms)
			default:
				goto next
			}
		}
	next:
	}

	total := len(posts)
	fmt.Printf("\ncoarse follow-all would deliver %d posts to each user\n", total)
	for _, u := range []string{"carol", "dan", "erin"} {
		fmt.Printf("fine-grained filtering delivered %d/%d to %s (%.0f%% suppressed)\n",
			delivered[u], total, u, 100*(1-float64(delivered[u])/float64(total)))
	}
	return nil
}

var noiseWords = []string{
	"coffee", "meeting", "weather", "music", "movie", "garden", "cat",
	"dog", "lunch", "traffic", "game", "book", "photo", "weekend",
}

func noisePost(rng *rand.Rand, i int) string {
	var b strings.Builder
	n := 4 + rng.Intn(8)
	for j := 0; j < n; j++ {
		b.WriteString(noiseWords[rng.Intn(len(noiseWords))])
		b.WriteByte(' ')
	}
	fmt.Fprintf(&b, "post%d", i)
	return b.String()
}
