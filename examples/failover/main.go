// Failover: reproduces the operational story behind Figure 9(c–d). Three
// identical clusters place allocated filter replicas with the ring, rack,
// and hybrid strategies; half the racks are then crashed and the example
// reports how much of the filter population each strategy kept reachable.
// Rack-local replicas die with their home's rack (lowest availability);
// ring-successor replicas are spread across racks (highest availability);
// the hybrid sits in between — which is why MOVE combines both (§V).
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"

	"github.com/movesys/move"
)

// topics are single-keyword subscriptions: each topic's filters live on one
// home node (plus its allocation-grid replicas), which is exactly the
// placement-sensitive population of Figure 9(d).
var topics = []string{
	"alerts", "weather", "sports", "finance", "music",
	"science", "travel", "politics",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "failover: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	for _, placement := range []move.Placement{move.PlacementRing, move.PlacementRack, move.PlacementHybrid} {
		if err := runPlacement(placement); err != nil {
			return err
		}
	}
	return nil
}

func placementName(p move.Placement) string {
	switch p {
	case move.PlacementRing:
		return "ring"
	case move.PlacementRack:
		return "rack"
	default:
		return "hybrid"
	}
}

func runPlacement(placement move.Placement) error {
	cluster, err := move.NewCluster(move.Config{
		Nodes:    20,
		RackSize: 5,
		// A tight per-node capacity keeps allocation grids small (~3
		// nodes), so the placement strategy — not grid size — decides
		// how failure-correlated the replicas are.
		Capacity:  60,
		Placement: placement,
		Seed:      3,
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(3))

	// 50 subscribers per topic: hot enough that every topic's home node
	// receives an allocation grid.
	for i := 0; i < 400; i++ {
		topic := topics[i%len(topics)]
		if _, err := cluster.SubscribeTerms(fmt.Sprintf("u%03d", i), []string{topic}); err != nil {
			return err
		}
	}
	ctx := context.Background()
	if err := cluster.RefreshBloom(ctx); err != nil {
		return err
	}
	for i := 0; i < 150; i++ {
		if _, err := cluster.PublishTerms(post(rng)); err != nil {
			return err
		}
	}
	if err := cluster.Allocate(ctx); err != nil {
		return err
	}

	before := cluster.Stats()
	// Crash half the racks — the correlated failure mode that kills
	// rack-local replica sets along with their home nodes.
	failed := cluster.FailNodes(0.5, true)
	after := cluster.Stats()

	complete, degraded := 0, 0
	const probes = 50
	for i := 0; i < probes; i++ {
		receipt, err := cluster.PublishTerms(post(rng))
		if err != nil {
			return err
		}
		if receipt.Complete {
			complete++
		}
		if receipt.Degraded {
			degraded++
		}
	}
	m := cluster.Metrics()
	fmt.Printf("placement=%-6s failed %d/%d nodes (whole racks): availability %.3f -> %.3f, %d/%d publishes complete, %d degraded\n",
		placementName(placement), failed, before.Nodes,
		before.AvailableFilters, after.AvailableFilters, complete, probes, degraded)
	fmt.Printf("    resilience: %d retries, %d give-ups, %d breaker opens, %d row failovers\n",
		m["rpc.retries"], m["rpc.giveups"], m["breaker.open"], m["publish.failover"])
	return nil
}

func post(rng *rand.Rand) []string {
	terms := []string{topics[rng.Intn(len(topics))], fmt.Sprintf("ticker%d", rng.Intn(500))}
	if rng.Float64() < 0.5 {
		terms = append(terms, topics[rng.Intn(len(topics))])
	}
	return terms
}
