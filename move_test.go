package move

import (
	"context"
	"errors"
	"testing"
	"time"
)

func newTestCluster(t testing.TB, nodes int) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{Nodes: nodes, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(Config{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
}

func TestSubscribePublishDeliver(t *testing.T) {
	c := newTestCluster(t, 6)
	sub, err := c.Subscribe("alice", "breaking news")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Terms) != 2 {
		t.Fatalf("terms = %v, want [break new]", sub.Terms)
	}
	receipt, err := c.Publish("Breaking News: something happened today")
	if err != nil {
		t.Fatal(err)
	}
	if !receipt.Complete || receipt.Matched != 1 {
		t.Fatalf("receipt = %+v", receipt)
	}
	select {
	case n := <-sub.C:
		if n.Subscriber != "alice" || n.FilterID != sub.ID {
			t.Fatalf("notification = %+v", n)
		}
	case <-time.After(time.Second):
		t.Fatal("no notification delivered")
	}
}

func TestStemmingUnifiesSubscriptionAndContent(t *testing.T) {
	c := newTestCluster(t, 4)
	sub, err := c.Subscribe("bob", "running marathons")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Publish("She runs a marathon every year"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sub.C:
	case <-time.After(time.Second):
		t.Fatal("stem mismatch: 'marathons' should match 'marathon'")
	}
}

func TestNoFalseDeliveries(t *testing.T) {
	c := newTestCluster(t, 4)
	sub, err := c.Subscribe("carol", "quantum computing")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Publish("a story about gardening and cooking"); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-sub.C:
		t.Fatalf("unexpected notification %+v", n)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestMatchAllSemantics(t *testing.T) {
	c := newTestCluster(t, 4)
	sub, err := c.Subscribe("dave", "go cluster", SubscribeOptions{Mode: MatchAll})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Publish("a cluster of machines"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sub.C:
		t.Fatal("MatchAll fired with only one term present")
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := c.Publish("go run your cluster"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sub.C:
	case <-time.After(time.Second):
		t.Fatal("MatchAll did not fire with both terms present")
	}
}

func TestEmptyInputs(t *testing.T) {
	c := newTestCluster(t, 3)
	if _, err := c.Subscribe("x", "the and of"); !errors.Is(err, ErrEmptyQuery) {
		t.Fatalf("stop-word-only query: %v", err)
	}
	if _, err := c.Publish(""); !errors.Is(err, ErrEmptyQuery) {
		t.Fatalf("empty publish: %v", err)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	c := newTestCluster(t, 4)
	sub, err := c.Subscribe("erin", "football")
	if err != nil {
		t.Fatal(err)
	}
	c.Unsubscribe(sub)
	if _, err := c.Publish("football match tonight"); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-sub.C:
		t.Fatalf("delivery after unsubscribe: %+v", n)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestSubscriptionOverflowDrops(t *testing.T) {
	c, err := NewCluster(Config{Nodes: 3, SubscriptionBuffer: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe("frank", "alerts")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Publish("alerts keep firing"); err != nil {
			t.Fatal(err)
		}
	}
	if sub.Dropped() != 4 {
		t.Fatalf("Dropped = %d, want 4 (buffer of 1)", sub.Dropped())
	}
}

func TestAllocateAndBloom(t *testing.T) {
	c := newTestCluster(t, 10)
	for i := 0; i < 50; i++ {
		if _, err := c.Subscribe("s", "hot topic"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if _, err := c.Publish("hot topic of the day"); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	if err := c.RefreshBloom(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Allocate(ctx); err != nil {
		t.Fatal(err)
	}
	receipt, err := c.Publish("still a hot topic")
	if err != nil {
		t.Fatal(err)
	}
	if receipt.Matched != 50 || !receipt.Complete {
		t.Fatalf("after allocation: %+v", receipt)
	}
}

func TestStatsAndFailover(t *testing.T) {
	c := newTestCluster(t, 10)
	if _, err := c.Subscribe("a", "term one two"); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Nodes != 10 || st.Alive != 10 || st.Filters != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AvailableFilters != 1 {
		t.Fatalf("availability = %v, want 1", st.AvailableFilters)
	}
	if n := c.FailNodes(0.3, false); n != 3 {
		t.Fatalf("failed %d nodes, want 3", n)
	}
	if st := c.Stats(); st.Alive != 7 {
		t.Fatalf("alive = %d, want 7", st.Alive)
	}
}

func TestSchemeBaselinesThroughPublicAPI(t *testing.T) {
	for _, scheme := range []Scheme{SchemeIL, SchemeRS} {
		c, err := NewCluster(Config{Nodes: 5, Scheme: scheme, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		sub, err := c.Subscribe("u", "database systems")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Publish("database systems conference"); err != nil {
			t.Fatal(err)
		}
		select {
		case <-sub.C:
		case <-time.After(time.Second):
			t.Fatalf("scheme %d: no delivery", scheme)
		}
	}
}
