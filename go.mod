module github.com/movesys/move

go 1.22
